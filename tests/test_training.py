"""Tests for the training pipeline: grids, objectives, sweeps, selection."""

import pytest

from repro.config import ProRPConfig, Seasonality
from repro.core.kpi import IdleBreakdown, KpiReport, LoginStats, WorkflowCounts
from repro.errors import ConfigError
from repro.simulation import SimulationSettings
from repro.training import (
    ParameterGrid,
    TrainingPipeline,
    qos_priority_objective,
    weighted_objective,
)
from repro.types import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.workload import RegionPreset, generate_region_traces

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR


def report(qos=80.0, idle=5.0):
    total_logins = 1000
    with_resources = int(total_logins * qos / 100)
    fleet_seconds = 1_000_000
    idle_s = int(fleet_seconds * idle / 100)
    return KpiReport(
        policy="proactive",
        n_databases=10,
        eval_start=0,
        eval_end=100_000,
        logins=LoginStats(with_resources, total_logins - with_resources),
        idle=IdleBreakdown(logical_pause_s=idle_s),
        workflows=WorkflowCounts(),
        used_s=0,
        saved_s=fleet_seconds - idle_s,
    )


class TestObjectives:
    def test_qos_priority_prefers_qos_within_cap(self):
        objective = qos_priority_objective(idle_cap_percent=15.0)
        assert objective(report(qos=90, idle=10)) > objective(report(qos=80, idle=5))

    def test_qos_priority_penalises_over_cap(self):
        objective = qos_priority_objective(idle_cap_percent=10.0)
        assert objective(report(qos=95, idle=30)) < objective(report(qos=80, idle=5))

    def test_weighted_objective(self):
        objective = weighted_objective(qos_weight=1.0, idle_weight=2.0)
        assert objective(report(qos=80, idle=10)) == pytest.approx(60.0)


class TestParameterGrid:
    def test_cross_product(self):
        grid = ParameterGrid({"confidence": [0.1, 0.5], "window_s": [HOUR, 2 * HOUR]})
        configs = grid.candidates(ProRPConfig())
        assert len(configs) == 4
        assert {c.confidence for c in configs} == {0.1, 0.5}

    def test_empty_grid_returns_base(self):
        base = ProRPConfig()
        assert ParameterGrid({}).candidates(base) == [base]

    def test_invalid_combinations_pruned(self):
        grid = ParameterGrid(
            {
                "history_days": [10, 28],
                "seasonality": [Seasonality.WEEKLY],
            }
        )
        configs = grid.candidates(ProRPConfig())
        # history_days=10 is not a whole number of weeks: pruned.
        assert len(configs) == 1
        assert configs[0].history_days == 28

    def test_all_invalid_raises(self):
        grid = ParameterGrid({"confidence": [0.0, -1.0]})
        with pytest.raises(ConfigError):
            grid.candidates(ProRPConfig())


class TestTrainingPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        traces = generate_region_traces(RegionPreset.EU1, 50, span_days=31, seed=4)
        settings = SimulationSettings(eval_start=29 * DAY, eval_end=30 * DAY)
        return TrainingPipeline(traces, settings)

    def test_run_selects_best_scorer(self, pipeline):
        grid = ParameterGrid({"confidence": [0.1, 0.8]})
        training = pipeline.run(ProRPConfig(), grid)
        assert len(training.candidates) == 2
        assert training.best.score == max(c.score for c in training.candidates)

    def test_low_confidence_wins_under_qos_priority(self, pipeline):
        """Section 9.2: production prioritises QoS and picks c = 0.1."""
        grid = ParameterGrid({"confidence": [0.1, 0.8]})
        training = pipeline.run(ProRPConfig(), grid)
        assert training.best.config.confidence == 0.1

    def test_sweep_rows_sorted_by_knob(self, pipeline):
        grid = ParameterGrid({"confidence": [0.5, 0.1, 0.3]})
        training = pipeline.run(ProRPConfig(), grid)
        rows = training.sweep_rows("confidence")
        assert [r["confidence"] for r in rows] == [0.1, 0.3, 0.5]
        assert all("qos_percent" in r and "idle_percent" in r for r in rows)

    def test_confidence_sweep_has_figure9_direction(self, pipeline):
        """Higher confidence -> fewer proactive resumes -> lower QoS and
        lower idle (the Figure 9 trends)."""
        grid = ParameterGrid({"confidence": [0.1, 0.8]})
        rows = pipeline.run(ProRPConfig(), grid).sweep_rows("confidence")
        low, high = rows[0], rows[1]
        assert low["qos_percent"] >= high["qos_percent"]
        assert low["idle_percent"] >= high["idle_percent"]
