"""The 'Default to Reactive' design principle (Section 3.2).

"If any component of ProRP goes down, the system must default to the
reactive policy until the failed component comes up."  These tests take
down the proactive components for a window and check the fleet degrades
to reactive behaviour during it -- and recovers after.
"""

import pytest

from repro.errors import SimulationError
from repro.simulation import SimulationSettings, simulate_region
from repro.types import SECONDS_PER_DAY, SECONDS_PER_HOUR, ActivityTrace, Session

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR


def daily_trace(days=32, database_id="daily"):
    return ActivityTrace(
        database_id,
        [Session(d * DAY + 9 * HOUR, d * DAY + 17 * HOUR) for d in range(days)],
        created_at=0,
    )


def settings_with_outage(outages=()):
    return SimulationSettings(
        eval_start=29 * DAY,
        eval_end=31 * DAY,
        resume_latency_jitter_s=0,
        prorp_outages=tuple(outages),
    )


class TestOutageValidation:
    def test_bad_outage_rejected(self):
        with pytest.raises(SimulationError):
            settings_with_outage([(100, 100)])


class TestDefaultToReactive:
    def test_login_during_outage_is_reactive(self):
        """ProRP is down across day 29's morning: no pre-warm, the 09:00
        login behaves exactly as under the reactive policy."""
        outage = (28 * DAY + 18 * HOUR, 29 * DAY + 12 * HOUR)
        kpis = simulate_region(
            [daily_trace()], "proactive", settings=settings_with_outage([outage])
        ).kpis()
        # Day 29 login reactive (outage), day 30 login pre-warmed (recovered).
        assert kpis.logins.total == 2
        assert kpis.logins.reactive == 1
        assert kpis.logins.with_resources == 1

    def test_no_prewarms_fire_during_outage(self):
        outage = (28 * DAY + 18 * HOUR, 29 * DAY + 12 * HOUR)
        result = simulate_region(
            [daily_trace()], "proactive", settings=settings_with_outage([outage])
        )
        for record in result.resume_iterations:
            if outage[0] <= record.time < outage[1]:
                raise AssertionError("resume operation ran during the outage")

    def test_recovery_restores_proactive_behaviour(self):
        outage = (28 * DAY + 18 * HOUR, 29 * DAY + 12 * HOUR)
        result = simulate_region(
            [daily_trace()], "proactive", settings=settings_with_outage([outage])
        )
        kpis = result.kpis()
        assert kpis.workflows.proactive_resumes == 1  # the day-30 pre-warm
        assert kpis.workflows.correct_proactive_resumes == 1

    def test_healthy_run_prewarms_both_days(self):
        kpis = simulate_region(
            [daily_trace()], "proactive", settings=settings_with_outage()
        ).kpis()
        assert kpis.logins.reactive == 0
        assert kpis.workflows.proactive_resumes == 2

    def test_outage_behaviour_matches_reactive_policy(self):
        """During a full-window outage, the 'proactive' policy's customer
        KPIs collapse onto the reactive policy's."""
        full_window = (28 * DAY, 31 * DAY)
        settings = settings_with_outage([full_window])
        degraded = simulate_region(
            [daily_trace()], "proactive", settings=settings
        ).kpis()
        reactive = simulate_region(
            [daily_trace()], "reactive", settings=settings_with_outage()
        ).kpis()
        assert degraded.logins.reactive == reactive.logins.reactive
        assert degraded.logins.with_resources == reactive.logins.with_resources
        assert degraded.workflows.proactive_resumes == 0
        assert degraded.idle.logical_pause_s == reactive.idle.logical_pause_s

    def test_accounting_identity_with_outage(self):
        from repro.workload import RegionPreset, generate_region_traces

        traces = generate_region_traces(RegionPreset.EU1, 40, span_days=32, seed=6)
        outage = (30 * DAY + 6 * HOUR, 30 * DAY + 12 * HOUR)
        settings = SimulationSettings(
            eval_start=30 * DAY, eval_end=31 * DAY, prorp_outages=(outage,)
        )
        kpis = simulate_region(traces, "proactive", settings=settings).kpis()
        assert kpis.accounted_seconds() == kpis.fleet_seconds

    def test_outage_costs_qos_on_a_fleet(self):
        from repro.workload import RegionPreset, generate_region_traces

        traces = generate_region_traces(RegionPreset.EU1, 80, span_days=32, seed=6)
        settings_ok = SimulationSettings(eval_start=30 * DAY, eval_end=31 * DAY)
        settings_down = SimulationSettings(
            eval_start=30 * DAY,
            eval_end=31 * DAY,
            prorp_outages=((29 * DAY, 31 * DAY),),
        )
        healthy = simulate_region(traces, "proactive", settings=settings_ok).kpis()
        degraded = simulate_region(traces, "proactive", settings=settings_down).kpis()
        assert degraded.qos_percent < healthy.qos_percent
