"""Per-archetype KPI drill-down.

The paper's challenge (1) is that usage patterns vary per database; this
report shows how each pattern class fares under a policy -- which
archetypes the predictor serves well (daily, nightly), which stay reactive
(sporadic, dormant), and where the idle cost concentrates.  Fleet
generators encode the archetype in the database id
(``<region>-<archetype>-<index>``), which the report parses; databases
with foreign id shapes land in the ``other`` group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.tables import format_table
from repro.simulation.results import DatabaseOutcome


@dataclass(frozen=True)
class ArchetypeKpis:
    """Aggregated outcomes of one pattern class."""

    archetype: str
    databases: int
    logins: int
    logins_served: int
    idle_s: int
    unavailable_s: int
    window_s: int

    @property
    def qos_percent(self) -> float:
        return 100.0 * self.logins_served / self.logins if self.logins else 0.0

    @property
    def idle_percent(self) -> float:
        total = self.databases * self.window_s
        return 100.0 * self.idle_s / total if total else 0.0


def archetype_of(database_id: str) -> str:
    """``eu1-daily-00042`` -> ``daily``; unknown shapes -> ``other``."""
    parts = database_id.split("-")
    if len(parts) >= 3:
        return "-".join(parts[1:-1])
    return "other"


def archetype_breakdown(
    outcomes: Sequence[DatabaseOutcome],
) -> List[ArchetypeKpis]:
    """Group per-database outcomes by archetype, most databases first."""
    groups: Dict[str, List[DatabaseOutcome]] = {}
    for outcome in outcomes:
        groups.setdefault(archetype_of(outcome.database_id), []).append(outcome)
    report: List[ArchetypeKpis] = []
    for name, members in groups.items():
        window = members[0].eval_end - members[0].eval_start
        report.append(
            ArchetypeKpis(
                archetype=name,
                databases=len(members),
                logins=sum(
                    o.logins_with_resources + o.logins_reactive for o in members
                ),
                logins_served=sum(o.logins_with_resources for o in members),
                idle_s=sum(o.idle_s for o in members),
                unavailable_s=sum(o.unavailable_s for o in members),
                window_s=window,
            )
        )
    report.sort(key=lambda a: (-a.databases, a.archetype))
    return report


def format_breakdown(breakdown: Sequence[ArchetypeKpis], title: str) -> str:
    rows = [
        [
            entry.archetype,
            entry.databases,
            entry.logins,
            round(entry.qos_percent, 1),
            round(entry.idle_percent, 2),
        ]
        for entry in breakdown
    ]
    return format_table(
        ["archetype", "databases", "logins", "QoS %", "idle %"],
        rows,
        title=title,
    )
