"""Ablation studies for the design choices DESIGN.md calls out.

* ``run_history_length_ablation`` -- Section 9.2 claims the QoS/COGS
  trade-off is "relatively independent from history length".
* ``run_seasonality_ablation`` -- "weekly seasonality achieves similar
  results to daily seasonality".
* ``run_prewarm_ablation`` -- sensitivity to the pre-warm interval ``k``.
* ``run_logical_pause_ablation`` -- the value of logical pauses: shrinking
  ``l`` towards zero approximates reclaim-immediately and shows the
  QoS collapse / workflow storm that motivates them (Section 1, (2)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import format_table
from repro.config import DEFAULT_CONFIG, ProRPConfig, Seasonality
from repro.experiments.common import (
    BENCH_SCALE,
    ExperimentScale,
    region_fleet,
    sweep_map,
)
from repro.parallel import SweepExecutor
from repro.simulation.region import simulate_region
from repro.types import SECONDS_PER_HOUR, SECONDS_PER_MINUTE
from repro.workload.regions import RegionPreset

HOUR = SECONDS_PER_HOUR
MIN = SECONDS_PER_MINUTE


@dataclass(frozen=True)
class AblationResult:
    knob: str
    rows_data: List[Dict[str, object]]
    title: str

    def rows(self) -> List[Dict[str, object]]:
        return self.rows_data

    def table(self) -> str:
        rows = [
            [
                r[self.knob],
                round(r["qos_percent"], 1),
                round(r["idle_percent"], 2),
                r["reactive_resumes"],
                r["physical_pauses"],
            ]
            for r in self.rows_data
        ]
        return format_table(
            [self.knob, "QoS%", "idle%", "reactive resumes", "physical pauses"],
            rows,
            title=self.title,
        )


def _ablation_task(context: Tuple, config: ProRPConfig):
    """One ablation candidate, worker-side."""
    preset, scale = context
    traces = region_fleet(preset, scale)
    return simulate_region(traces, "proactive", config, scale.settings()).kpis()


def _sweep(
    knob: str,
    configs: Sequence[ProRPConfig],
    labels: Sequence[object],
    title: str,
    scale: ExperimentScale,
    preset: RegionPreset,
    executor: Optional[SweepExecutor] = None,
    workers: Optional[int] = None,
) -> AblationResult:
    kpi_reports = sweep_map(
        _ablation_task, (preset, scale), list(configs), executor, workers
    )
    rows: List[Dict[str, object]] = []
    for label, kpis in zip(labels, kpi_reports):
        rows.append(
            {
                knob: label,
                "qos_percent": kpis.qos_percent,
                "idle_percent": kpis.idle_percent,
                "reactive_resumes": kpis.workflows.reactive_resumes,
                "physical_pauses": kpis.workflows.physical_pauses,
            }
        )
    return AblationResult(knob=knob, rows_data=rows, title=title)


def run_history_length_ablation(
    scale: ExperimentScale = BENCH_SCALE,
    preset: RegionPreset = RegionPreset.EU1,
    history_days: Sequence[int] = (7, 14, 21, 28),
    executor: Optional[SweepExecutor] = None,
    workers: Optional[int] = None,
) -> AblationResult:
    configs = [DEFAULT_CONFIG.with_overrides(history_days=h) for h in history_days]
    return _sweep(
        "history_days",
        configs,
        list(history_days),
        "Ablation: history length h [paper Section 9.2: trade-off "
        "relatively independent of h; h must stay below the databases' "
        "lifespan or they all count as new]",
        scale,
        preset,
        executor=executor,
        workers=workers,
    )


def run_seasonality_ablation(
    scale: ExperimentScale = BENCH_SCALE,
    preset: RegionPreset = RegionPreset.EU1,
    executor: Optional[SweepExecutor] = None,
    workers: Optional[int] = None,
) -> AblationResult:
    configs = [
        DEFAULT_CONFIG.with_overrides(seasonality=Seasonality.DAILY),
        DEFAULT_CONFIG.with_overrides(
            seasonality=Seasonality.WEEKLY, horizon_s=7 * 24 * HOUR
        ),
        DEFAULT_CONFIG.with_overrides(auto_seasonality=True),
    ]
    return _sweep(
        "seasonality",
        configs,
        ["daily", "weekly", "auto"],
        "Ablation: seasonality [paper Section 9.2: weekly achieves similar "
        "results to daily; 'auto' detects the period per database]",
        scale,
        preset,
        executor=executor,
        workers=workers,
    )


def run_prewarm_ablation(
    scale: ExperimentScale = BENCH_SCALE,
    preset: RegionPreset = RegionPreset.EU1,
    prewarm_minutes: Sequence[int] = (1, 5, 15, 60),
    executor: Optional[SweepExecutor] = None,
    workers: Optional[int] = None,
) -> AblationResult:
    configs = [
        DEFAULT_CONFIG.with_overrides(prewarm_s=m * MIN) for m in prewarm_minutes
    ]
    return _sweep(
        "prewarm_min",
        configs,
        list(prewarm_minutes),
        "Ablation: pre-warm interval k [earlier pre-warm trades idle time "
        "for login-jitter tolerance]",
        scale,
        preset,
        executor=executor,
        workers=workers,
    )


def run_logical_pause_ablation(
    scale: ExperimentScale = BENCH_SCALE,
    preset: RegionPreset = RegionPreset.EU1,
    pause_hours: Sequence[float] = (0.05, 1, 7, 14),
    executor: Optional[SweepExecutor] = None,
    workers: Optional[int] = None,
) -> AblationResult:
    configs = [
        DEFAULT_CONFIG.with_overrides(logical_pause_s=int(h * HOUR))
        for h in pause_hours
    ]
    return _sweep(
        "logical_pause_h",
        configs,
        list(pause_hours),
        "Ablation: logical pause duration l [l -> 0 approximates "
        "reclaim-immediately: QoS drops, reclamation workflows surge "
        "(the Section 1 motivation for logical pauses)]",
        scale,
        preset,
        executor=executor,
        workers=workers,
    )
