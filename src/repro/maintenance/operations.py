"""Maintenance operation model.

Section 3.3: system maintenance operations trigger resumes but are ignored
by the proactive policy (they are not customer activity).  Section 11(4)
plans to schedule them when the database is predicted to be online anyway.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SimulationError


class MaintenanceKind(enum.Enum):
    """The operations Section 11(4) lists."""

    BACKUP = "backup"
    SOFTWARE_UPDATE = "software_update"
    VERSION_UPGRADE = "version_upgrade"
    STATS_REFRESH = "stats_refresh"


#: Typical durations in seconds (synthetic but plausible).
DEFAULT_DURATIONS = {
    MaintenanceKind.BACKUP: 15 * 60,
    MaintenanceKind.SOFTWARE_UPDATE: 10 * 60,
    MaintenanceKind.VERSION_UPGRADE: 30 * 60,
    MaintenanceKind.STATS_REFRESH: 5 * 60,
}


@dataclass(frozen=True)
class MaintenanceOperation:
    """One pending operation for one database.

    The operation may run anywhere inside ``[window_start, deadline]``; a
    scheduler picks the concrete start time.
    """

    database_id: str
    kind: MaintenanceKind
    window_start: int
    deadline: int
    duration_s: int

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise SimulationError("maintenance duration must be positive")
        if self.deadline - self.window_start < self.duration_s:
            raise SimulationError(
                f"{self.kind.value} for {self.database_id}: the window "
                f"[{self.window_start}, {self.deadline}] cannot fit "
                f"{self.duration_s}s of work"
            )

    @classmethod
    def with_default_duration(
        cls,
        database_id: str,
        kind: MaintenanceKind,
        window_start: int,
        deadline: int,
    ) -> "MaintenanceOperation":
        return cls(
            database_id=database_id,
            kind=kind,
            window_start=window_start,
            deadline=deadline,
            duration_s=DEFAULT_DURATIONS[kind],
        )


@dataclass(frozen=True)
class ScheduledOperation:
    """A scheduler's placement decision."""

    operation: MaintenanceOperation
    start: int

    @property
    def end(self) -> int:
        return self.start + self.operation.duration_s
