"""Offline evaluation of next-activity prediction accuracy.

The paper's justification for the probabilistic approach is that "the
accuracy of simple statistical and probabilistic load prediction
techniques is sufficient in practice" (Section 1).  This module measures
that accuracy directly: every prediction the policy made is joined with
the ground-truth trace and classified, and the lead-time error (actual
login minus predicted start) is collected.

Classification of one prediction made at time ``t`` with horizon ``p``:

* **hit** -- a prediction was made and the actual next login falls inside
  ``[predicted_start - tolerance, predicted_end + tolerance]``;
* **miss** -- a prediction was made, a login happened within the horizon,
  but outside the tolerated window;
* **false alarm** -- a prediction was made but no login happened within
  the horizon (a pre-warm would have been wrong);
* **undetected** -- no prediction, yet a login happened within the horizon
  (a pre-warm opportunity lost);
* **true quiet** -- no prediction and indeed no login within the horizon.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import percentile
from repro.simulation.results import DatabaseOutcome
from repro.types import SECONDS_PER_MINUTE, ActivityTrace

#: How far the actual login may fall outside the predicted interval and
#: still count as a hit: the pre-warm would still have been useful.
DEFAULT_TOLERANCE_S = 30 * SECONDS_PER_MINUTE


@dataclass
class AccuracyReport:
    """Aggregated prediction-vs-ground-truth statistics."""

    hits: int = 0
    misses: int = 0
    false_alarms: int = 0
    undetected: int = 0
    true_quiet: int = 0
    #: actual login time - predicted start, for every hit or miss.
    lead_time_errors_s: List[int] = field(default_factory=list)

    @property
    def total(self) -> int:
        return (
            self.hits
            + self.misses
            + self.false_alarms
            + self.undetected
            + self.true_quiet
        )

    @property
    def precision(self) -> float:
        """Of the predictions made, how many led to a useful pre-warm."""
        made = self.hits + self.misses + self.false_alarms
        return self.hits / made if made else 0.0

    @property
    def recall(self) -> float:
        """Of the logins that happened, how many were predicted in time."""
        had_login = self.hits + self.misses + self.undetected
        return self.hits / had_login if had_login else 0.0

    def lead_time_percentile(self, q: float) -> float:
        if not self.lead_time_errors_s:
            raise ValueError("no lead-time samples")
        return percentile(self.lead_time_errors_s, q)

    def merge(self, other: "AccuracyReport") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.false_alarms += other.false_alarms
        self.undetected += other.undetected
        self.true_quiet += other.true_quiet
        self.lead_time_errors_s.extend(other.lead_time_errors_s)


def evaluate_predictions(
    outcome: DatabaseOutcome,
    trace: ActivityTrace,
    horizon_s: int,
    tolerance_s: int = DEFAULT_TOLERANCE_S,
) -> AccuracyReport:
    """Score every recorded prediction of one database against its trace."""
    report = AccuracyReport()
    starts = [session.start for session in trace.sessions]
    for made_at, predicted_start, predicted_end, _confidence in outcome.predictions:
        index = bisect.bisect_right(starts, made_at)
        actual: Optional[int] = starts[index] if index < len(starts) else None
        login_in_horizon = actual is not None and actual <= made_at + horizon_s
        predicted = predicted_start != 0
        if predicted and login_in_horizon:
            report.lead_time_errors_s.append(actual - predicted_start)
            if predicted_start - tolerance_s <= actual <= predicted_end + tolerance_s:
                report.hits += 1
            else:
                report.misses += 1
        elif predicted and not login_in_horizon:
            report.false_alarms += 1
        elif not predicted and login_in_horizon:
            report.undetected += 1
        else:
            report.true_quiet += 1
    return report


def evaluate_fleet_predictions(
    outcomes: Sequence[DatabaseOutcome],
    traces: Sequence[ActivityTrace],
    horizon_s: int,
    tolerance_s: int = DEFAULT_TOLERANCE_S,
) -> AccuracyReport:
    """Fleet-wide accuracy: the union of every database's report."""
    by_id: Dict[str, ActivityTrace] = {t.database_id: t for t in traces}
    fleet = AccuracyReport()
    for outcome in outcomes:
        trace = by_id.get(outcome.database_id)
        if trace is None:
            continue
        fleet.merge(
            evaluate_predictions(outcome, trace, horizon_s, tolerance_s)
        )
    return fleet
