"""Experiment drivers: one module per evaluation figure of the paper.

Each driver regenerates the rows/series behind one figure on a synthetic
fleet and returns a structured result with ``rows()`` and ``table()``.
The benchmark harness (``benchmarks/``) runs these and prints the tables;
EXPERIMENTS.md records the measured values against the paper's.

========  ==========================================================
Driver    Reproduces
========  ==========================================================
fig3      Idle-time fragmentation CDFs (Figure 3)
fig6      Reactive vs proactive KPIs across regions (Figure 6)
fig7      Validation across evaluation days (Figure 7)
fig8      Window-size sweep (Figure 8)
fig9      Confidence-threshold sweep (Figure 9)
fig10     Overhead CDFs: history size + prediction latency (Figure 10)
fig11     Proactive-resume workflow frequency (Figure 11)
fig12     Physical-pause workflow frequency (Figure 12)
ablation  Design-choice studies: pre-warm k, history length,
          seasonality, logical-pause duration, predictor backends
chaos     Fault-rate sweep against QoS/COGS (``docs/resilience.md``)
========  ==========================================================
"""

from repro.experiments.common import ExperimentScale, region_fleet

__all__ = ["ExperimentScale", "region_fleet"]
