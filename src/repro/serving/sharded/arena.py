"""Zero-copy shared-memory login history for the sharded serving tier.

The router builds one :class:`SharedHistoryArena` for the whole fleet: a
CSR layout (``offsets``/``top``/``versions``/``paused``/``logins``) over
a single ``multiprocessing.shared_memory`` segment.  Workers attach by
name and map the same pages read-only through numpy views -- a worker's
predict or resume-scan request reads login timestamps straight out of
the router's memory, paying zero serialisation and zero copies.

Write discipline (single-writer, many-readers):

* The **router** (the creating process) owns all mutation: pause-state
  flips (:meth:`SharedHistoryArena.set_paused`) and login appends
  (:meth:`SharedHistoryArena.append_login`, bounded by per-database
  ``slack`` capacity reserved at build time).
* An append writes the timestamp *first*, advances ``top`` second and
  bumps ``versions`` last, so a reader that observes the new version is
  guaranteed to observe the new login too.  Workers key their prediction
  caches on the version, which makes an append invalidate exactly the
  affected database's cached predictions.
* Workers treat the mapping as read-only; nothing enforces it at the MMU
  level (``shared_memory`` has no read-only attach), the contract is the
  API: attached arenas raise on mutators.

Layout of the segment (all little-endian, offsets in bytes computed from
the spec -- the segment itself carries no header, the picklable
:class:`ArenaSpec` travels to workers over the spawn pipe instead)::

    offsets   int64[n + 1]   CSR base of each database's login slots
    top       int64[n]       live login count (<= capacity per database)
    versions  int64[n]       login version, bumped by every append
    paused    uint8[n]       1 = physically paused
    logins    int64[L]       login timestamps, ascending per database

CPython's ``resource_tracker`` would unlink the segment when the *first*
attaching child exits (bpo-38119); :func:`_attach` unregisters the
attached segment from the tracker so only the owning router unlinks.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError

#: Extra login slots reserved per database at build time so the router
#: can append live logins without rebuilding the arena.
DEFAULT_SLACK = 8


@dataclass(frozen=True)
class ArenaSpec:
    """Everything a worker needs to map the arena: the segment name plus
    the shapes and the (region, database-id) directory.  Picklable, so it
    rides the spawn bootstrap pipe to worker processes."""

    name: str
    databases: int
    login_capacity: int
    #: region -> [start, end) index range into the database axis.
    regions: Tuple[Tuple[str, int, int], ...]
    #: database ids, concatenated in region order (length ``databases``).
    database_ids: Tuple[str, ...]


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting unlink duty.

    Python 3.13 grew ``track=False`` for exactly this case.  On older
    runtimes, attaching *registers* the segment with the resource
    tracker (bpo-38119) -- but spawn children inherit the router's
    tracker process and its cache is a set, so the duplicate register is
    idempotent and the router's eventual ``unlink`` removes the entry
    exactly once.  Do NOT "fix" the duplicate with a manual
    ``resource_tracker.unregister`` here: through the shared tracker
    that would erase the router's own registration and leak the segment
    on crash.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - runtime-version dependent
        return shared_memory.SharedMemory(name=name)


class RegionView:
    """A read-only, dict-like view of one region's databases.

    Speaks the mapping subset :class:`~repro.serving.server.
    PredictionServer` uses for its fleet registry (``get`` /
    ``__getitem__`` / ``items`` yielding ``(logins, paused)``) plus
    ``login_version`` -- so a worker serves straight off the arena with
    the same code paths as the in-process registry.  Iteration order is
    the build-time registration order, which keeps resume-scan orderings
    identical between the sharded and in-process paths.
    """

    __slots__ = ("_arena", "region", "_start", "_end", "_index")

    def __init__(self, arena: "SharedHistoryArena", region: str, start: int, end: int):
        self._arena = arena
        self.region = region
        self._start = start
        self._end = end
        ids = arena.spec.database_ids
        self._index = {ids[i]: i for i in range(start, end)}

    def __len__(self) -> int:
        return self._end - self._start

    def __contains__(self, database_id: str) -> bool:
        return database_id in self._index

    def _entry(self, i: int) -> Tuple[np.ndarray, bool]:
        a = self._arena
        base = int(a.offsets[i])
        top = int(a.top[i])
        return a.logins[base : base + top], bool(a.paused[i])

    def __getitem__(self, database_id: str) -> Tuple[np.ndarray, bool]:
        return self._entry(self._index[database_id])

    def get(
        self, database_id: str, default=None
    ) -> Optional[Tuple[np.ndarray, bool]]:
        i = self._index.get(database_id)
        return default if i is None else self._entry(i)

    def items(self) -> Iterator[Tuple[str, Tuple[np.ndarray, bool]]]:
        ids = self._arena.spec.database_ids
        for i in range(self._start, self._end):
            yield ids[i], self._entry(i)

    def login_version(self, database_id: str) -> int:
        return int(self._arena.versions[self._index[database_id]])


class SharedHistoryArena:
    """The shared CSR login store; one per sharded serving deployment.

    Build with :meth:`build` (router side, owns the segment and may
    mutate) or :meth:`from_lean_history` (snapshot a simulated fleet);
    attach with :meth:`attach` (worker side, read-only).  ``close``
    detaches; ``unlink`` (owner only) frees the segment.
    """

    def __init__(
        self,
        spec: ArenaSpec,
        shm: shared_memory.SharedMemory,
        owner: bool,
    ):
        self.spec = spec
        self._shm = shm
        self.owner = owner
        n = spec.databases
        capacity = spec.login_capacity
        buf = shm.buf
        cursor = 0

        def carve(count: int, dtype) -> np.ndarray:
            nonlocal cursor
            arr = np.ndarray((count,), dtype=dtype, buffer=buf, offset=cursor)
            cursor += arr.nbytes
            return arr

        self.offsets = carve(n + 1, np.int64)
        self.top = carve(n, np.int64)
        self.versions = carve(n, np.int64)
        self.paused = carve(n, np.uint8)
        self.logins = carve(capacity, np.int64)
        self._region_range = {
            region: (start, end) for region, start, end in spec.regions
        }
        self._db_index: Dict[Tuple[str, str], int] = {}
        ids = spec.database_ids
        for region, start, end in spec.regions:
            for i in range(start, end):
                self._db_index[(region, ids[i])] = i

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def _required_bytes(databases: int, login_capacity: int) -> int:
        return 8 * (databases + 1) + 8 * databases * 2 + databases + 8 * login_capacity

    @classmethod
    def build(
        cls,
        fleet: Mapping[str, Sequence[Tuple[str, Sequence[int], bool]]],
        slack: int = DEFAULT_SLACK,
        name: Optional[str] = None,
    ) -> "SharedHistoryArena":
        """Create the segment from ``region -> [(database_id, logins,
        paused), ...]`` (ordering preserved -- it becomes the resume-scan
        iteration order).  ``slack`` reserves append capacity per
        database."""
        if slack < 0:
            raise ConfigError("arena slack must be non-negative")
        regions = []
        database_ids = []
        counts = []
        login_chunks = []
        paused_flags = []
        cursor = 0
        for region, entries in fleet.items():
            start = cursor
            for database_id, logins, paused in entries:
                arr = np.asarray(logins, dtype=np.int64)
                if arr.ndim != 1:
                    raise ConfigError(
                        f"logins for {database_id!r} must be one-dimensional"
                    )
                database_ids.append(database_id)
                counts.append(len(arr))
                login_chunks.append(arr)
                paused_flags.append(paused)
                cursor += 1
            regions.append((region, start, cursor))
        n = cursor
        counts_arr = np.asarray(counts, dtype=np.int64)
        capacities = counts_arr + slack
        total = int(capacities.sum()) if n else 0
        spec_name = name
        shm = shared_memory.SharedMemory(
            create=True,
            size=max(1, cls._required_bytes(n, total)),
            **({"name": spec_name} if spec_name else {}),
        )
        spec = ArenaSpec(
            name=shm.name,
            databases=n,
            login_capacity=total,
            regions=tuple(regions),
            database_ids=tuple(database_ids),
        )
        arena = cls(spec, shm, owner=True)
        arena.offsets[0] = 0
        if n:
            np.cumsum(capacities, out=arena.offsets[1:])
            arena.top[:] = counts_arr
            arena.versions[:] = counts_arr  # mirrors HistoryStore warm load
            arena.paused[:] = np.asarray(paused_flags, dtype=np.uint8)
            for i, chunk in enumerate(login_chunks):
                base = int(arena.offsets[i])
                arena.logins[base : base + len(chunk)] = chunk
        return arena

    @classmethod
    def from_lean_history(
        cls,
        region: str,
        history,
        database_ids: Sequence[str],
        paused: Sequence[bool],
        slack: int = DEFAULT_SLACK,
    ) -> "SharedHistoryArena":
        """Snapshot a :class:`repro.simulation.fleet.LeanHistory` into an
        arena for one region (the fleet-sim -> serving handoff).  Uses
        the history's compacted CSR export so trim cursors and the
        witness special case are resolved before workers ever look."""
        offsets, logins, _versions = history.export_csr()
        if len(database_ids) != history.n or len(paused) != history.n:
            raise ConfigError(
                "database_ids/paused must match the history's database count"
            )
        entries = [
            (
                database_ids[d],
                logins[int(offsets[d]) : int(offsets[d + 1])],
                bool(paused[d]),
            )
            for d in range(history.n)
        ]
        return cls.build({region: entries}, slack=slack)

    @classmethod
    def attach(cls, spec: ArenaSpec) -> "SharedHistoryArena":
        """Worker-side mapping of an existing arena (read-only by
        contract; mutators raise)."""
        return cls(spec, _attach(spec.name), owner=False)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def views(self) -> Dict[str, RegionView]:
        """Per-region views suitable for ``PredictionServer.attach_fleet``."""
        return {
            region: RegionView(self, region, start, end)
            for region, start, end in self.spec.regions
        }

    def _index_of(self, region: str, database_id: str) -> int:
        i = self._db_index.get((region, database_id))
        if i is None:
            raise ConfigError(
                f"unknown database {database_id!r} in region {region!r}"
            )
        return i

    def login_version(self, region: str, database_id: str) -> int:
        return int(self.versions[self._index_of(region, database_id)])

    def login_view(self, region: str, database_id: str) -> np.ndarray:
        i = self._index_of(region, database_id)
        base = int(self.offsets[i])
        return self.logins[base : base + int(self.top[i])]

    def nbytes(self) -> int:
        return self._shm.size

    # ------------------------------------------------------------------
    # Writes (owner only)
    # ------------------------------------------------------------------

    def _require_owner(self) -> None:
        if not self.owner:
            raise ConfigError(
                "arena is attached read-only; only the creating router "
                "process may mutate it"
            )

    def set_paused(self, region: str, database_id: str, paused: bool) -> None:
        self._require_owner()
        self.paused[self._index_of(region, database_id)] = 1 if paused else 0

    def append_login(self, region: str, database_id: str, ts: int) -> None:
        """Append one login (ascending, deduped on timestamp) into the
        database's slack capacity; bumps the version last so readers that
        see the new version see the new login."""
        self._require_owner()
        i = self._index_of(region, database_id)
        base = int(self.offsets[i])
        top = int(self.top[i])
        if top and ts < int(self.logins[base + top - 1]):
            raise ConfigError(
                f"login {ts} is older than the newest history entry "
                f"{int(self.logins[base + top - 1])} for {database_id!r}"
            )
        if top and ts == int(self.logins[base + top - 1]):
            return
        if base + top >= int(self.offsets[i + 1]):
            raise ConfigError(
                f"database {database_id!r} exhausted its arena slack; "
                f"rebuild the arena with more headroom"
            )
        self.logins[base + top] = ts
        self.top[i] = top + 1
        self.versions[i] += 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (numpy views become invalid)."""
        self.offsets = self.top = self.versions = None  # type: ignore[assignment]
        self.paused = self.logins = None  # type: ignore[assignment]
        self._shm.close()

    def unlink(self) -> None:
        """Free the segment (owner only; call after every worker exited)."""
        self._require_owner()
        self._shm.unlink()
