"""Discrete-event simulation of a region of serverless databases.

* :mod:`repro.simulation.engine` -- the event queue (priority heap with
  stable ordering and cancellable timers).  Events are plain callables, so
  there is no separate event-type module.
* :mod:`repro.simulation.actor` -- the per-database policy executors: the
  reactive baseline and the proactive policy of Algorithm 1, driven by
  session start/end events from a workload trace.
* :mod:`repro.simulation.region` -- the region simulator: wires actors,
  the cluster, the metadata store, and the proactive resume operation
  (Algorithm 5) together and produces KPI reports.
* :mod:`repro.simulation.results` -- accounting of logins, idle time,
  workflow counts, and timelines.
* :mod:`repro.simulation.columnar` -- the struct-of-arrays engine: the
  per-actor FSM transposed into flat numpy state, byte-identical to the
  actor path (``simulate_region`` routes through it by default).
* :mod:`repro.simulation.fleet` -- million-database scale: lean
  array-backed stores over the columnar engine plus deterministic
  region sharding across the parallel executors.
"""

from repro.simulation.engine import EventQueue, Timer
from repro.simulation.fleet import (
    FleetSimulationResult,
    ShardedFleetResult,
    merge_kpi_reports,
    simulate_fleet,
    simulate_fleet_sharded,
)
from repro.simulation.region import (
    RegionSimulationResult,
    SimulationSettings,
    simulate_region,
)

__all__ = [
    "EventQueue",
    "Timer",
    "simulate_region",
    "SimulationSettings",
    "RegionSimulationResult",
    "simulate_fleet",
    "simulate_fleet_sharded",
    "merge_kpi_reports",
    "FleetSimulationResult",
    "ShardedFleetResult",
]
