"""History-versioned prediction cache and hot-path statistics.

Algorithm 4 is a pure function of (sorted login timestamps, knobs, ``now``):
re-running it when none of those changed is wasted work.  The simulator
re-predicts in two situations where the inputs are frequently identical to
a prediction it already holds -- the settle phase at ``sim_start`` (every
idle-old database predicts at the same instant the region pre-seeded via
:meth:`repro.core.fast_predictor.FastPredictor.predict_fleet`) and repeated
control-plane passes within one event timestamp.  The cache memoises the
last prediction of one database under the **exact** key

``(HistoryStore.login_version, ProRPConfig, now)``

and only ever returns a hit for a byte-identical replay of the same call.
Predictions anchor their candidate windows at ``now`` (Algorithm 4 line 9),
so two calls at different ``now`` genuinely differ even with identical
logins -- a looser "still ahead of the clock" reuse rule would change
simulation results, which the equivalence suite forbids.  Only logins
invalidate: the key uses :attr:`HistoryStore.login_version`, which
ACTIVITY_END inserts and non-login trims do not bump.

The module also hosts :data:`HOT_PATH` -- always-on counters of full
Algorithm-4 scans, batched fleet evaluations, and cache traffic.  They are
plain integer attributes (no registry lookups) so the accounting itself
stays off the profile; the richer :class:`~repro.observability.metrics.
MetricsRegistry` counters are recorded only when observability is enabled.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.config import ProRPConfig
from repro.observability.runtime import OBS
from repro.types import PredictedActivity

#: Cache key: (login_version, knobs, prediction instant).
CacheKey = Tuple[int, ProRPConfig, int]


class HotPathStats:
    """Always-on counters of prediction hot-path traffic.

    ``full_scans`` counts complete Algorithm-4 evaluations (reference or
    vectorised, single-database); ``batch_evals`` counts
    ``predict_fleet`` invocations and ``batch_databases`` the databases
    they covered.  The benchmark's ">= 3x fewer full scans" criterion is
    measured from these.
    """

    __slots__ = (
        "full_scans",
        "batch_evals",
        "batch_databases",
        "cache_hits",
        "cache_misses",
        "cache_invalidations",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.full_scans = 0
        self.batch_evals = 0
        self.batch_databases = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_invalidations = 0

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    @property
    def predictor_invocations(self) -> int:
        """Predictor entry points paid for: every full scan plus one per
        batched evaluation (the batch costs one grid pass, not D)."""
        return self.full_scans + self.batch_evals


#: Process-wide hot-path statistics (benchmarks reset() around runs).
HOT_PATH = HotPathStats()


class PredictionCache:
    """Single-slot exact-key memo of one database's last prediction.

    One slot suffices: the settle phase stores the batched prediction and
    the immediately following ``actor.start()`` refresh replays the same
    (login_version, config, now) triple.  A hit requires the full key to
    match; a lookup that finds a slot with a *different* login version
    counts as an invalidation (a login arrived since) and clears the slot.
    """

    __slots__ = ("_key", "_value")

    def __init__(self) -> None:
        self._key: Optional[CacheKey] = None
        self._value: Optional[PredictedActivity] = None

    def get(
        self, login_version: int, config: ProRPConfig, now: int
    ) -> Optional[PredictedActivity]:
        """Return the memoised prediction for this exact key, else None."""
        key = self._key
        if key is not None:
            if key[0] == login_version and key[2] == now and key[1] == config:
                HOT_PATH.cache_hits += 1
                if OBS.enabled:
                    OBS.metrics.counter("predictor.cache.hits").inc()
                return self._value
            if key[0] != login_version:
                HOT_PATH.cache_invalidations += 1
                if OBS.enabled:
                    OBS.metrics.counter("predictor.cache.invalidations").inc()
                self._key = None
                self._value = None
        HOT_PATH.cache_misses += 1
        if OBS.enabled:
            OBS.metrics.counter("predictor.cache.misses").inc()
        return None

    def put(
        self,
        login_version: int,
        config: ProRPConfig,
        now: int,
        prediction: PredictedActivity,
    ) -> None:
        """Memoise ``prediction`` under the exact key."""
        self._key = (login_version, config, now)
        self._value = prediction
