"""Micro-benchmarks for Algorithm 4: reference vs vectorised predictor.

The reference implementation issues p/s * h B-tree range queries per
prediction (the paper's stored procedure); the vectorised implementation
answers the same grid with two searchsorted passes.  The ablation quantifies
the speed-up that makes fleet-scale simulation practical.

``bench_reference_predictor_observed`` times the metrics-enabled path; the
no-op overhead bound for *disabled* instrumentation lives in
``benchmarks/bench_observability.py`` (the single writer of
``benchmarks/results/BENCH_observability.json``).
"""

from repro.config import ProRPConfig
from repro.core.fast_predictor import FastPredictor
from repro.core.predictor import predict_next_activity
from repro.observability import NULL_TRACER, observed
from repro.storage.history import HistoryStore
from repro.types import EventType, SECONDS_PER_DAY, SECONDS_PER_HOUR

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR


def _daily_history(days: int = 28, logins_per_day: int = 6):
    store = HistoryStore()
    logins = []
    for day in range(days):
        for k in range(logins_per_day):
            t = day * DAY + 9 * HOUR + k * 45 * 60
            store.insert_history(t, EventType.ACTIVITY_START)
            logins.append(t)
    return store, logins


def bench_reference_predictor(benchmark):
    """The stored-procedure implementation (Figure 10(c)'s subject)."""
    config = ProRPConfig()
    store, _ = _daily_history()
    now = 28 * DAY
    result = benchmark(predict_next_activity, store, config, now)
    assert not result.is_empty


def bench_fast_predictor(benchmark):
    """The NumPy implementation used for fleet simulation."""
    config = ProRPConfig()
    _, logins = _daily_history()
    predictor = FastPredictor(config)
    now = 28 * DAY
    result = benchmark(predictor.predict, logins, now)
    assert not result.is_empty


def bench_fast_predictor_large_history(benchmark):
    """Worst-case history (Figure 10(a)'s >4K tuple tail)."""
    config = ProRPConfig()
    _, logins = _daily_history(logins_per_day=80)
    predictor = FastPredictor(config)
    result = benchmark(predictor.predict, logins, 28 * DAY)
    assert not result.is_empty


def bench_reference_predictor_observed(benchmark):
    """The reference predictor with metrics collection enabled: the cost a
    live deployment pays for the Figure 10(c) percentiles."""
    config = ProRPConfig()
    store, _ = _daily_history()
    now = 28 * DAY
    with observed(tracer=NULL_TRACER):
        result = benchmark(predict_next_activity, store, config, now)
    assert not result.is_empty
