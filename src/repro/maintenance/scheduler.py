"""Maintenance schedulers and their evaluation.

The naive scheduler is the status quo the paper criticises: operations run
at a fixed offset inside their window regardless of the database's state,
so physically paused databases get resumed *just* for maintenance.  The
predictive scheduler asks the next-activity predictor for the database's
expected online window and places the operation inside it whenever the
two overlap, falling back to the naive placement otherwise.

``evaluate_schedule`` scores both against the ground-truth activity trace:
an operation is "free" when the customer was online anyway, an "extra
resume" otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.config import ProRPConfig
from repro.core.predictor import predict_next_activity
from repro.maintenance.operations import MaintenanceOperation, ScheduledOperation
from repro.storage.history import HistoryStore
from repro.types import ActivityTrace


class NaiveScheduler:
    """Fixed placement: run at the start of the allowed window."""

    name = "naive"

    def schedule(self, operation: MaintenanceOperation) -> ScheduledOperation:
        return ScheduledOperation(operation=operation, start=operation.window_start)


class PredictiveScheduler:
    """Place operations inside the predicted-online window (Section 11(4)).

    For each operation, the scheduler predicts the next customer activity
    from the database's history (as of the operation window start).  If the
    predicted interval overlaps the operation window long enough to fit the
    work, the operation starts at the beginning of the overlap; otherwise
    the scheduler falls back to the naive placement (the deadline still
    must be honoured).
    """

    name = "predictive"

    def __init__(self, histories: Dict[str, HistoryStore], config: ProRPConfig):
        self._histories = histories
        self._config = config

    def schedule(self, operation: MaintenanceOperation) -> ScheduledOperation:
        history = self._histories.get(operation.database_id)
        if history is None:
            return NaiveScheduler().schedule(operation)
        predicted = predict_next_activity(
            history, self._config, operation.window_start
        )
        if not predicted.is_empty:
            overlap_start = max(predicted.start, operation.window_start)
            latest_start = min(
                predicted.end, operation.deadline - operation.duration_s
            )
            if overlap_start <= latest_start:
                # Start as late as the predicted window allows: the
                # predicted start is the earliest login ever observed, so
                # early placements usually beat the customer to the door;
                # by the predicted *end* the customer has logged in on
                # almost every historical day (and activity typically
                # continues past it).
                return ScheduledOperation(operation=operation, start=latest_start)
        return NaiveScheduler().schedule(operation)


@dataclass(frozen=True)
class MaintenanceEvaluation:
    """How a schedule interacted with real customer activity."""

    scheduler: str
    total: int
    #: Operations that started while the customer was online (no extra
    #: resume, no extra billing-relevant state change).
    while_online: int
    #: Operations that hit an idle/paused database: the backend had to
    #: resume it just for maintenance.
    extra_resumes: int

    @property
    def online_percent(self) -> float:
        return 100.0 * self.while_online / self.total if self.total else 0.0


def evaluate_schedule(
    scheduled: Sequence[ScheduledOperation],
    traces: Dict[str, ActivityTrace],
    scheduler_name: str,
) -> MaintenanceEvaluation:
    """Score placements against ground-truth demand."""
    while_online = 0
    for placement in scheduled:
        trace = traces[placement.operation.database_id]
        if trace.demand_at(placement.start) == 1:
            while_online += 1
    total = len(scheduled)
    return MaintenanceEvaluation(
        scheduler=scheduler_name,
        total=total,
        while_online=while_online,
        extra_resumes=total - while_online,
    )


def build_histories(
    traces: Sequence[ActivityTrace], as_of: int, history_days: int
) -> Dict[str, HistoryStore]:
    """Per-database histories reflecting everything before ``as_of`` (what
    the tracker would have accumulated when the scheduler runs)."""
    histories: Dict[str, HistoryStore] = {}
    for trace in traces:
        store = HistoryStore()
        for event in trace.events():
            if event.time_snapshot < as_of:
                store.insert_history(event.time_snapshot, event.event_type)
        store.delete_old_history(history_days, as_of)
        histories[trace.database_id] = store
    return histories
