"""Objectives for configuration selection.

The paper prioritises quality of service over operational costs when
choosing the production knobs (Section 9.2: window 7h, confidence 0.1),
while still seeking "the best middle ground" (Section 8).
"""

from __future__ import annotations

from typing import Callable

from repro.core.kpi import KpiReport

#: An objective maps a KPI report to a score; higher is better.
Objective = Callable[[KpiReport], float]


def qos_priority_objective(idle_cap_percent: float = 15.0) -> Objective:
    """Maximise QoS subject to a soft cap on idle time.

    Configurations within the idle cap are ranked by QoS; those above it
    are penalised by how far they exceed it, so an extreme-QoS knob that
    wastes resources cannot win (the production stance of Section 9.2).
    """

    def score(report: KpiReport) -> float:
        penalty = max(0.0, report.idle_percent - idle_cap_percent) * 10.0
        return report.qos_percent - penalty

    return score


def weighted_objective(qos_weight: float = 1.0, idle_weight: float = 1.0) -> Objective:
    """A linear QoS-vs-COGS trade-off for sensitivity studies."""

    def score(report: KpiReport) -> float:
        return qos_weight * report.qos_percent - idle_weight * report.idle_percent

    return score
