"""Figure 8 bench: window-size sweep 1-8h.

Paper shape: QoS climbs (67 -> 87%) and idle time grows (3 -> 8%) with
the window size.
"""

from repro.experiments.common import BENCH_SCALE
from repro.experiments.fig8 import run_fig8


def bench_fig8_window_size(benchmark, record_table):
    result = benchmark.pedantic(
        run_fig8, args=(BENCH_SCALE,), rounds=1, iterations=1
    )
    record_table("fig08_window_size", result.table())
    rows = result.rows()
    assert rows[-1]["qos_percent"] >= rows[0]["qos_percent"]
    assert rows[-1]["idle_percent"] >= rows[0]["idle_percent"]
