"""Resilience primitives: retry with backoff, deadlines, circuit breaking.

These are the defensive half of the fault subsystem -- the machinery that
keeps the control plane safe when the faults of ``repro.faults.injector``
(or real infrastructure) misbehave:

* :class:`RetryPolicy` -- bounded retries with exponential backoff and
  deterministic jitter; the proactive resume scan uses it so a transient
  metadata-store outage costs a few retries, not a missed pre-warm cycle.
* :class:`Deadline` -- a time budget guard for operations that must not
  run past a bound (the paper's stuck-workflow mitigation window).
* :class:`CircuitBreaker` -- closed/open/half-open breaker driven by
  sim-time; the proactive policy trips one on repeated predictor failures
  and degrades to the reactive policy (Section 3.2's "Default to
  Reactive") until the breaker recovers.

Everything here is deterministic: backoff jitter comes from a seeded PRNG
and breaker transitions are driven by the caller's clock, so chaos runs
replay bit-for-bit.
"""

from __future__ import annotations

import enum
import random
import time
from typing import Callable, List, Optional, Tuple, Type

from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    ProRPError,
)
from repro.faults.runtime import FAULTS
from repro.observability.runtime import OBS


class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``delays()`` exposes the full backoff schedule (seconds before attempt
    2, 3, ...); ``call`` runs a function under the policy.  The simulator
    never sleeps -- callers pass ``sleep=None`` (the default) to merely
    count the backoff, or their own sink to account simulated delay.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay_s: float = 1.0,
        multiplier: float = 2.0,
        max_delay_s: float = 60.0,
        jitter: float = 0.0,
        seed: int = 0,
    ):
        if max_attempts < 1:
            raise ConfigError("RetryPolicy needs at least one attempt")
        if base_delay_s < 0 or max_delay_s < 0:
            raise ConfigError("retry delays must be non-negative")
        if multiplier < 1.0:
            raise ConfigError("retry multiplier must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ConfigError("retry jitter must be in [0, 1]")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.multiplier = multiplier
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self._seed = seed

    def delays(self) -> List[float]:
        """Backoff before each retry (length ``max_attempts - 1``)."""
        rng = random.Random(f"{self._seed}:retry")
        delays = []
        delay = self.base_delay_s
        for _ in range(self.max_attempts - 1):
            bounded = min(delay, self.max_delay_s)
            if self.jitter:
                # Full jitter around the nominal delay: +/- jitter fraction.
                bounded *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            delays.append(bounded)
            delay *= self.multiplier
        return delays

    def call(
        self,
        fn: Callable[[], object],
        retry_on: Tuple[Type[BaseException], ...] = (ProRPError,),
        on_retry: Optional[Callable[[int, float, BaseException], None]] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> object:
        """Run ``fn`` with retries; re-raises the last failure when the
        attempts are exhausted.  ``on_retry(attempt, delay_s, error)`` is
        invoked before each retry."""
        schedule = self.delays()
        last: Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except retry_on as exc:
                last = exc
                if attempt == self.max_attempts:
                    break
                delay = schedule[attempt - 1]
                if on_retry is not None:
                    on_retry(attempt, delay, exc)
                if sleep is not None:
                    sleep(delay)
        assert last is not None
        raise last


class Deadline:
    """A time budget: ``check()`` raises once the budget is spent.

    The clock is injectable so simulated components can drive it from
    sim-time ticks instead of wall time.
    """

    def __init__(
        self,
        budget_s: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if budget_s < 0:
            raise ConfigError("a deadline budget must be non-negative")
        self._clock = clock
        self._expires_at = clock() + budget_s

    def remaining_s(self) -> float:
        return max(0.0, self._expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def check(self, what: str = "operation") -> None:
        if self.expired:
            raise DeadlineExceededError(f"{what} exceeded its deadline")


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Gauge encoding of breaker states for the metrics registry.
_BREAKER_GAUGE = {
    BreakerState.CLOSED: 0,
    BreakerState.OPEN: 1,
    BreakerState.HALF_OPEN: 2,
}


class CircuitBreaker:
    """A sim-time circuit breaker.

    CLOSED counts consecutive failures; at ``failure_threshold`` it OPENs
    and :meth:`allow` refuses calls for ``recovery_s``.  The first allowed
    call after the recovery window runs HALF_OPEN: ``half_open_successes``
    consecutive successes re-CLOSE it, any failure re-OPENs it.

    All transitions are driven by the ``now`` the caller passes in, so a
    breaker inside the discrete-event simulator trips and recovers on the
    simulated clock, deterministically.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_s: int = 900,
        half_open_successes: int = 1,
        name: str = "breaker",
    ):
        if failure_threshold < 1:
            raise ConfigError("failure_threshold must be at least 1")
        if recovery_s < 0:
            raise ConfigError("recovery_s must be non-negative")
        if half_open_successes < 1:
            raise ConfigError("half_open_successes must be at least 1")
        self.name = name
        self._failure_threshold = failure_threshold
        self._recovery_s = recovery_s
        self._half_open_successes = half_open_successes
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._half_open_streak = 0
        self._opened_at: Optional[int] = None
        #: Times the breaker transitioned CLOSED/HALF_OPEN -> OPEN.
        self.opens = 0

    @property
    def state(self) -> BreakerState:
        return self._state

    def _transition(self, state: BreakerState, now: int) -> None:
        if state is self._state:
            return
        self._state = state
        if state is BreakerState.OPEN:
            self.opens += 1
            self._opened_at = now
            if FAULTS.enabled and FAULTS.injector is not None:
                FAULTS.injector.note(f"breaker.{self.name}.open")
        if OBS.enabled:
            OBS.metrics.counter(
                f"breaker.{self.name}.transition.{state.value}"
            ).inc()
            OBS.metrics.gauge(f"breaker.{self.name}.state").set(
                _BREAKER_GAUGE[state]
            )
            # Windowed state series on the caller's (sim) clock: the
            # predictor_unavailable SLO thresholds on its last sample.
            OBS.metrics.gauge_series(
                f"breaker.{self.name}.state.window"
            ).set(now, _BREAKER_GAUGE[state])

    def allow(self, now: int) -> bool:
        """Whether a call may proceed at sim-time ``now``.  Moving from
        OPEN past the recovery window flips to HALF_OPEN (probe mode)."""
        if self._state is BreakerState.OPEN:
            assert self._opened_at is not None
            if now - self._opened_at >= self._recovery_s:
                self._half_open_streak = 0
                self._transition(BreakerState.HALF_OPEN, now)
                return True
            return False
        return True

    def record_success(self, now: int) -> None:
        if self._state is BreakerState.HALF_OPEN:
            self._half_open_streak += 1
            if self._half_open_streak >= self._half_open_successes:
                self._consecutive_failures = 0
                self._transition(BreakerState.CLOSED, now)
        else:
            self._consecutive_failures = 0

    def record_failure(self, now: int) -> None:
        if self._state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.OPEN, now)
            return
        self._consecutive_failures += 1
        if (
            self._state is BreakerState.CLOSED
            and self._consecutive_failures >= self._failure_threshold
        ):
            self._transition(BreakerState.OPEN, now)

    def tripped(self, now: int) -> bool:
        """True while calls are being refused (OPEN inside recovery)."""
        return (
            self._state is BreakerState.OPEN
            and self._opened_at is not None
            and now - self._opened_at < self._recovery_s
        )
