"""Tests for the online serving gateway (``repro/serving/``).

The center of gravity is the equivalence property: the micro-batcher,
under *any* interleaving of request arrivals and any batching knobs, must
resolve every request with exactly the prediction a per-request
``FastPredictor.predict`` call would return -- batching is transport, not
semantics.  The strategy reuses the fleet harness of
``tests/test_prediction_cache.py``.

Around that: admission control (bounded depth, token buckets, deadlines),
typed load shedding, fault-point/breaker integration, the JSON-over-TCP
front end, serving metrics, and the graceful-shutdown contract (no
request future is ever left pending).
"""

import asyncio
import json

import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.core.fast_predictor import get_fast_predictor
from repro.errors import ConfigError
from repro.faults import FaultPlan, FaultSpec, chaos
from repro.observability import observed
from repro.serving import (
    AdmissionController,
    AdmissionPolicy,
    HealthRequest,
    MicroBatcher,
    PredictionServer,
    PredictRequest,
    ResumeScanRequest,
    ServingProtocolError,
    ServingSettings,
    TokenBucket,
    closed_loop,
    decode_request,
    encode_response,
    fleet_login_arrays,
    open_loop,
    serve_tcp,
)
from repro.serving.requests import (
    DeadlineExpired,
    Overloaded,
    PredictResponse,
    RateLimited,
    ResumeScanResponse,
    Shutdown,
    Unavailable,
)
from repro.types import SECONDS_PER_DAY, SECONDS_PER_HOUR
from tests.test_prediction_cache import CONFIG_VARIANTS, fleet_logins

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR
NOW = 29 * DAY

#: A small deterministic fleet shared by the server-level tests.
FLEETS = fleet_login_arrays(n_databases=24, now=NOW, seed=3)


class SteppingClock:
    """A fake monotonic clock advancing ``step`` seconds per read."""

    def __init__(self, step: float = 0.0, start: float = 100.0):
        self.t = start
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


def predict_request(i: int, **overrides) -> PredictRequest:
    defaults = dict(
        request_id=f"r{i}",
        logins=tuple(FLEETS[i % len(FLEETS)]),
        now=NOW,
    )
    defaults.update(overrides)
    return PredictRequest(**defaults)


# ----------------------------------------------------------------------
# Micro-batcher: byte-identical to per-request predict (property-based)
# ----------------------------------------------------------------------


@st.composite
def arrival_schedule(draw):
    """Batching knobs plus a per-request arrival plan: each request
    either joins immediately or sleeps first, producing arbitrary
    interleavings of batch membership."""
    max_batch = draw(st.integers(min_value=1, max_value=8))
    linger_ms = draw(st.sampled_from([0.0, 0.5, 2.0]))
    delays = draw(
        st.lists(st.sampled_from([0, 1, 2]), min_size=1, max_size=12)
    )
    return max_batch, linger_ms, delays


@hsettings(max_examples=25, deadline=None)
@given(
    fleet_logins(),
    arrival_schedule(),
    st.sampled_from(["daily", "weekly", "tight"]),
)
def test_batcher_matches_per_request_predict(fleets, schedule, variant):
    config = CONFIG_VARIANTS[variant]
    predictor = get_fast_predictor(config)
    max_batch, linger_ms, delays = schedule
    # One request per delay slot, cycling over the drawn fleet.
    requests = [fleets[i % len(fleets)] for i in range(len(delays))]

    async def run():
        batcher = MicroBatcher(
            lambda key, batch, now: predictor.predict_fleet(batch, now),
            max_batch_size=max_batch,
            max_linger_s=linger_ms / 1000.0,
        )

        async def one(i):
            if delays[i]:
                await asyncio.sleep(0.0005 * delays[i])
            prediction, _ = await batcher.submit("k", requests[i], NOW)
            return prediction

        return await asyncio.gather(*(one(i) for i in range(len(requests))))

    batched = asyncio.run(run())
    assert batched == [predictor.predict(logins, NOW) for logins in requests]


def test_batcher_flushes_at_max_size_without_linger():
    """A full batch must not wait out a (here: absurd) linger window."""
    predictor = get_fast_predictor(DEFAULT_CONFIG)

    async def run():
        batcher = MicroBatcher(
            lambda key, batch, now: predictor.predict_fleet(batch, now),
            max_batch_size=3,
            max_linger_s=30.0,
        )
        results = await asyncio.wait_for(
            asyncio.gather(
                *(batcher.submit("k", FLEETS[i], NOW) for i in range(3))
            ),
            timeout=5.0,
        )
        assert [size for _, size in results] == [3, 3, 3]
        assert batcher.batches == 1 and batcher.batched_requests == 3

    asyncio.run(run())


def test_batcher_groups_by_key_and_now():
    """Different (key, now) pairs never share a batch."""
    predictor = get_fast_predictor(DEFAULT_CONFIG)

    async def run():
        batcher = MicroBatcher(
            lambda key, batch, now: predictor.predict_fleet(batch, now),
            max_batch_size=16,
            max_linger_s=0.001,
        )
        results = await asyncio.gather(
            batcher.submit("a", FLEETS[0], NOW),
            batcher.submit("a", FLEETS[1], NOW),
            batcher.submit("b", FLEETS[2], NOW),
            batcher.submit("a", FLEETS[3], NOW + 60),
        )
        sizes = [size for _, size in results]
        assert sizes == [2, 2, 1, 1]
        assert batcher.batches == 3

    asyncio.run(run())


def test_batcher_rejects_bad_knobs():
    with pytest.raises(ConfigError):
        MicroBatcher(lambda k, b, n: [], max_batch_size=0)
    with pytest.raises(ConfigError):
        MicroBatcher(lambda k, b, n: [], max_linger_s=-1.0)


# ----------------------------------------------------------------------
# Server end-to-end: predictions via the gateway == direct predict
# ----------------------------------------------------------------------


def test_server_serves_batched_predictions():
    predictor = get_fast_predictor(DEFAULT_CONFIG)

    async def run():
        server = PredictionServer(
            settings=ServingSettings(max_linger_ms=1.0)
        )
        responses = await server.serve_script(
            [predict_request(i) for i in range(10)]
        )
        for i, response in enumerate(responses):
            assert isinstance(response, PredictResponse)
            assert response.prediction == predictor.predict(FLEETS[i], NOW)
        # The burst coalesced: far fewer evaluations than requests.
        assert server.batcher.batches < 10
        assert server.batcher.batched_requests == 10

    asyncio.run(run())


def test_server_unknown_config_is_unavailable_not_fatal():
    async def run():
        server = PredictionServer()
        [response] = await server.serve_script(
            [predict_request(0, config="nope")]
        )
        assert isinstance(response, Unavailable)
        assert "nope" in response.message

    asyncio.run(run())


def test_malformed_logins_resolve_not_hang():
    """A request whose logins numpy cannot coerce must resolve as a typed
    error -- for itself AND for every request that shared its batch --
    never strand a future (regression: ValueError escaped ``_handle``)."""

    async def run():
        server = PredictionServer(
            settings=ServingSettings(max_linger_ms=50.0, max_batch_size=64)
        )
        bad = predict_request(0, request_id="bad", logins=("bogus",))
        good = predict_request(1, request_id="good")
        responses = await asyncio.wait_for(
            server.serve_script([bad, good]), timeout=5.0
        )
        for response in responses:
            assert isinstance(response, Unavailable)
        assert server.depth() == 0

    asyncio.run(run())


def test_resume_scan_matches_direct_predictions():
    """The scan must select exactly the paused databases whose directly
    computed prediction starts inside the pre-warm window."""
    predictor = get_fast_predictor(DEFAULT_CONFIG)

    async def run():
        server = PredictionServer()
        for i, logins in enumerate(FLEETS):
            server.register_database(
                "EU1", f"db-{i}", logins, paused=(i % 3 != 0)
            )
        await server.start()
        for prewarm_s in (0, 600, 3600, 6 * HOUR):
            response = await server.submit(
                ResumeScanRequest(
                    f"scan-{prewarm_s}", NOW, prewarm_s=prewarm_s,
                    period_s=30 * 60,
                )
            )
            assert isinstance(response, ResumeScanResponse)
            expected = tuple(
                f"db-{i}"
                for i, logins in enumerate(FLEETS)
                if i % 3 != 0
                and not predictor.predict(logins, NOW).is_empty
                and prewarm_s + NOW
                <= predictor.predict(logins, NOW).start
                < prewarm_s + NOW + 30 * 60
            )
            assert response.database_ids == expected
            assert response.scanned == sum(
                1 for i in range(len(FLEETS)) if i % 3 != 0
            )
        await server.stop()

    asyncio.run(run())


# ----------------------------------------------------------------------
# Admission control and load shedding
# ----------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = SteppingClock(step=0.0)
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.t += 1.5  # 1.5 tokens refill
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = SteppingClock(step=0.0)
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.t += 1000.0
        for _ in range(3):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ConfigError):
            AdmissionPolicy(max_queue_depth=0)
        # A rate-limited policy with a non-positive burst must fail at
        # configuration time, not at the first admit() for the tenant.
        with pytest.raises(ConfigError):
            AdmissionPolicy(tenant_rate=5.0, tenant_burst=0.0)
        # Burst is irrelevant while rate limiting is disabled.
        AdmissionPolicy(tenant_rate=0.0, tenant_burst=0.0)


def test_admission_controller_reasons():
    controller = AdmissionController(
        AdmissionPolicy(max_queue_depth=2, tenant_rate=10.0, tenant_burst=1.0),
        clock=SteppingClock(step=0.0),
    )
    request = predict_request(0)
    assert controller.admit(request, depth=0) is None
    assert isinstance(controller.admit(request, depth=2), Overloaded)
    # Tenant burst of one: the second immediate request is rate limited,
    # another tenant is not.
    assert isinstance(controller.admit(request, depth=0), RateLimited)
    other = predict_request(1, tenant="other")
    assert controller.admit(other, depth=0) is None
    expired = predict_request(2, tenant="t3", deadline_ms=0.0)
    assert isinstance(controller.admit(expired, depth=0), DeadlineExpired)
    stopping = controller.admit(request, depth=0, stopping=True)
    assert isinstance(stopping, Shutdown)
    assert controller.shed == {
        "queue_full": 1, "rate_limited": 1, "deadline": 1, "shutdown": 1,
    }
    assert controller.admitted == 2


def test_server_sheds_overload_with_bounded_depth():
    """With a depth bound of two, a burst of five sheds three as
    Overloaded; the admitted two are served and depth never exceeds
    the bound."""

    async def run():
        server = PredictionServer(
            settings=ServingSettings(
                max_queue_depth=2,
                max_batch_size=100,
                max_linger_ms=10_000.0,
            )
        )
        await server.start()
        tasks = [
            asyncio.get_running_loop().create_task(
                server.submit(predict_request(i))
            )
            for i in range(5)
        ]
        responses = await asyncio.gather(*tasks)
        kinds = sorted(r.kind for r in responses)
        assert kinds == ["overloaded"] * 3 + ["predict"] * 2
        assert all(
            isinstance(r, Overloaded) for r in responses if r.kind != "predict"
        )
        assert server.stats.max_depth <= 2
        assert server.admission.shed["queue_full"] == 3
        await server.stop()

    asyncio.run(run())


def test_server_dispatch_deadline_shed():
    """A queue wait that consumes the client budget sheds at dispatch."""

    async def run():
        # Every clock read advances one second, so the measured queue
        # wait is always >= 1000 ms.
        server = PredictionServer(clock=SteppingClock(step=1.0))
        await server.start()
        response = await server.submit(
            predict_request(0, deadline_ms=500.0)
        )
        assert isinstance(response, DeadlineExpired)
        assert "in queue" in response.message
        assert server.admission.shed["deadline"] == 1
        await server.stop()

    asyncio.run(run())


# ----------------------------------------------------------------------
# Graceful shutdown: no future left pending
# ----------------------------------------------------------------------


def test_stop_resolves_every_future():
    """The regression pin for the shutdown contract: whatever mix of
    queued, in-flight, and about-to-arrive requests exists at stop()
    time, every submit() call resolves to a typed response."""

    async def run():
        server = PredictionServer(
            settings=ServingSettings(
                max_batch_size=100, max_linger_ms=10_000.0
            )
        )
        await server.start()
        loop = asyncio.get_running_loop()
        tasks = [
            loop.create_task(server.submit(predict_request(i)))
            for i in range(8)
        ]
        # One event-loop tick: some requests are dispatched into the
        # stalled batcher, the rest are still queued.
        await asyncio.sleep(0)
        await server.stop()
        responses = await asyncio.wait_for(asyncio.gather(*tasks), timeout=5.0)
        assert all(
            isinstance(r, (PredictResponse, Shutdown)) for r in responses
        )
        assert server.batcher.pending_requests == 0
        assert not server._in_flight
        # Post-stop arrivals are rejected, typed.
        late = await server.submit(predict_request(99))
        assert isinstance(late, Shutdown)
        predicted = [r for r in responses if isinstance(r, PredictResponse)]
        predictor = get_fast_predictor(DEFAULT_CONFIG)
        for response in predicted:
            i = int(response.request_id[1:])
            assert response.prediction == predictor.predict(FLEETS[i], NOW)

    asyncio.run(run())


def test_stop_flushes_metrics_snapshot(tmp_path):
    out = tmp_path / "serving_metrics.json"

    async def run():
        server = PredictionServer(
            settings=ServingSettings(metrics_out=str(out))
        )
        await server.serve_script(
            [predict_request(0), HealthRequest("h")]
        )

    with observed():
        asyncio.run(run())
    snapshot = json.loads(out.read_text())
    assert "serving.queue.wait_ms" in snapshot
    assert "serving.batch.size" in snapshot
    assert snapshot["serving.requests.predict"]["value"] == 1
    assert snapshot["serving.requests.health"]["value"] == 1


# ----------------------------------------------------------------------
# Fault injection and resilience
# ----------------------------------------------------------------------


def test_handler_fault_exhausts_retries_then_unavailable():
    plan = FaultPlan.of(FaultSpec("serving.handler", probability=1.0))

    async def run(server):
        return await server.serve_script([predict_request(0)])

    with chaos(plan, seed=7) as injector:
        server = PredictionServer(settings=ServingSettings(retry_attempts=3))
        [response] = asyncio.run(run(server))
    assert isinstance(response, Unavailable)
    assert injector.fires["serving.handler"] == 3  # every attempt failed
    assert injector.events.get("retry.serving.handler") == 2
    assert server.stats.errors == 1


def test_handler_fault_transient_is_retried_away():
    """One fire then clean: the retry absorbs it, the client never sees it."""
    plan = FaultPlan.of(
        FaultSpec("serving.handler", probability=1.0, max_fires=1)
    )

    async def run(server):
        return await server.serve_script([predict_request(0)])

    with chaos(plan, seed=7):
        server = PredictionServer(settings=ServingSettings(retry_attempts=2))
        [response] = asyncio.run(run(server))
    assert isinstance(response, PredictResponse)
    assert server.stats.errors == 0


def test_breaker_opens_after_repeated_handler_faults():
    plan = FaultPlan.of(FaultSpec("serving.handler", probability=1.0))

    async def run(server):
        await server.start()
        responses = []
        for i in range(8):
            responses.append(await server.submit(predict_request(i)))
        await server.stop()
        return responses

    with chaos(plan, seed=1) as injector:
        server = PredictionServer(
            settings=ServingSettings(
                retry_attempts=1,
                breaker_failure_threshold=3,
                breaker_recovery_s=10_000.0,
            )
        )
        responses = asyncio.run(run(server))
    assert all(isinstance(r, Unavailable) for r in responses)
    assert server._breaker.opens == 1
    # Once open, evaluations are refused without consulting the backend:
    # only the first three requests reached the fault point.
    assert injector.fires["serving.handler"] == 3
    assert any("breaker open" in r.message for r in responses[3:])


def test_queue_full_fault_forces_shed():
    plan = FaultPlan.of(FaultSpec("serving.queue_full", probability=1.0))

    async def run(server):
        return await server.serve_script([predict_request(0)])

    with chaos(plan, seed=0):
        server = PredictionServer()
        [response] = asyncio.run(run(server))
    assert isinstance(response, Overloaded)
    assert server.admission.shed["queue_full"] == 1


# ----------------------------------------------------------------------
# JSON codec and the TCP front end
# ----------------------------------------------------------------------


class TestCodec:
    def test_predict_round_trip(self):
        request = decode_request(
            {
                "type": "predict",
                "request_id": "x",
                "logins": [1, 2, 3],
                "now": 100,
                "deadline_ms": 25.5,
            }
        )
        assert isinstance(request, PredictRequest)
        assert request.logins == (1, 2, 3)
        assert request.deadline_ms == 25.5

    def test_unknown_type_rejected(self):
        with pytest.raises(ServingProtocolError):
            decode_request({"type": "drop_tables"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ServingProtocolError):
            decode_request(
                {"type": "health", "request_id": "x", "hack": True}
            )

    def test_missing_field_rejected(self):
        with pytest.raises(ServingProtocolError):
            decode_request({"type": "predict", "request_id": "x"})

    def test_non_object_rejected(self):
        with pytest.raises(ServingProtocolError):
            decode_request(["predict"])

    def test_non_iterable_logins_rejected(self):
        with pytest.raises(ServingProtocolError):
            decode_request(
                {"type": "predict", "request_id": "x", "logins": 5, "now": 0}
            )

    def test_non_integer_logins_rejected(self):
        for logins in (["bogus"], [1.5], [True], "123"):
            with pytest.raises(ServingProtocolError):
                decode_request(
                    {
                        "type": "predict",
                        "request_id": "x",
                        "logins": logins,
                        "now": 0,
                    }
                )

    def test_encode_error_response(self):
        doc = encode_response(Overloaded("x", "full"))
        assert doc == {
            "type": "overloaded", "request_id": "x", "message": "full",
        }


def test_tcp_front_end_round_trip():
    predictor = get_fast_predictor(DEFAULT_CONFIG)

    async def run():
        server = PredictionServer()
        listener = await serve_tcp(server, port=0)
        port = listener.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)

        async def call(doc):
            writer.write((json.dumps(doc) + "\n").encode())
            await writer.drain()
            return json.loads(await asyncio.wait_for(reader.readline(), 5.0))

        doc = await call(
            {
                "type": "predict",
                "request_id": "t1",
                "logins": list(FLEETS[0]),
                "now": NOW,
            }
        )
        assert doc["type"] == "predict" and doc["request_id"] == "t1"
        direct = predictor.predict(FLEETS[0], NOW)
        if direct.is_empty:
            assert doc["prediction"] is None
        else:
            assert doc["prediction"]["start"] == direct.start
            assert doc["prediction"]["end"] == direct.end

        health = await call({"type": "health", "request_id": "t2"})
        assert health["status"] == "ok"

        writer.write(b"this is not json\n")
        await writer.drain()
        invalid = json.loads(await asyncio.wait_for(reader.readline(), 5.0))
        assert invalid["type"] == "invalid"

        # Malformed logins (non-integer elements, non-iterable) must be
        # refused at decode time -- not hang the batch (regression).
        bad = await call(
            {
                "type": "predict",
                "request_id": "t3",
                "logins": ["bogus"],
                "now": NOW,
            }
        )
        assert bad["type"] == "invalid"
        bad = await call(
            {"type": "predict", "request_id": "t4", "logins": 5, "now": NOW}
        )
        assert bad["type"] == "invalid"
        still_alive = await call({"type": "health", "request_id": "t5"})
        assert still_alive["status"] == "ok"

        writer.close()
        await writer.wait_closed()
        listener.close()
        await listener.wait_closed()
        await server.stop()

    asyncio.run(run())


# ----------------------------------------------------------------------
# Load generation
# ----------------------------------------------------------------------


def test_closed_loop_loadgen_completes_everything():
    async def run():
        server = PredictionServer()
        await server.start()
        report = await closed_loop(
            server, FLEETS, NOW, clients=4, requests_per_client=5, seed=1
        )
        await server.stop()
        return report

    report = asyncio.run(run())
    assert report.offered == 20
    assert report.completed == 20 and report.shed == 0
    assert len(report.latencies_ms) == 20
    assert report.throughput_rps > 0
    assert report.percentile_ms(99.0) >= report.percentile_ms(50.0)
    summary = report.summary()
    assert summary["mode"] == "closed" and summary["clients"] == 4


def test_open_loop_loadgen_accounts_all_arrivals():
    async def run():
        server = PredictionServer(
            settings=ServingSettings(max_queue_depth=4)
        )
        await server.start()
        report = await open_loop(
            server, FLEETS, NOW, rate_rps=2000.0, n_requests=40, seed=2
        )
        await server.stop()
        return report

    report = asyncio.run(run())
    assert report.completed + report.shed == 40
    assert report.shed_by_kind.get("overloaded", 0) == report.shed


def test_fleet_login_arrays_are_sorted_and_windowed():
    fleets = fleet_login_arrays(n_databases=10, now=NOW, seed=0)
    assert fleets
    start = NOW - DEFAULT_CONFIG.history_days * DAY
    for logins in fleets:
        assert list(logins) == sorted(logins)
        assert all(start <= t < NOW for t in logins)


def test_stop_checkpoints_control_plane(tmp_path):
    """A server wired to a durable control plane journals every workflow
    its resume scans submit, and ``stop()`` checkpoints the engine before
    exit -- so a restarted server recovers the identical workflow state
    instead of re-resuming databases it already handled."""
    from repro.controlplane.durability import (
        DurableWorkflowEngine,
        checkpoint_paths,
    )

    state_dir = tmp_path / "controlplane"

    async def run():
        # checkpoint_every=0 disables periodic checkpoints: the one the
        # test finds afterwards can only have come from stop().
        engine = DurableWorkflowEngine(state_dir, checkpoint_every=0)
        server = PredictionServer(control_plane=engine)
        for i, logins in enumerate(FLEETS):
            server.register_database("EU1", f"db-{i}", logins, paused=True)
        await server.start()
        selected = set()
        # Scans tiled over the next day: together they cover every
        # possible predicted start, so the fixture fleet is guaranteed
        # to trigger at least one pre-warm submission.
        for k in range(12):
            response = await server.submit(
                ResumeScanRequest(
                    f"scan-{k}", NOW, prewarm_s=k * 2 * HOUR,
                    period_s=2 * HOUR,
                )
            )
            assert isinstance(response, ResumeScanResponse)
            selected.update(response.database_ids)
        await server.stop()
        return engine, selected

    engine, selected = asyncio.run(run())
    assert selected, "fixture fleet produced no pre-warm candidates"
    assert len(engine.workflows) == len(selected)
    assert checkpoint_paths(state_dir), "stop() did not write a checkpoint"
    recovered = DurableWorkflowEngine.recover(state_dir)
    assert recovered.lsn == engine.lsn
    assert {w.database_id for w in recovered.workflows.values()} == selected
    assert recovered.recovery_info["replayed"] == 0, (
        "recovery replayed WAL records despite a fresh stop() checkpoint"
    )
    recovered.close()
