"""Vectorised fleet synthesis for million-database simulations.

:func:`repro.workload.generator.generate_fleet` draws each database with
its own ``random.Random`` and builds per-session objects -- perfect for a
few hundred traces, hopeless for a million.  This module generates the
same *kind* of fleet (a weighted archetype mixture with daily presence,
phase jitter, and a new-database tail) directly into the flat CSR arrays
the columnar engine consumes (:mod:`repro.simulation.columnar`), using one
``numpy`` pass over a databases x days grid instead of D Python loops.

Determinism contract: :meth:`FleetShardSpec.materialize` is a pure
function of ``(spec, lo, hi)``.  Sharded fleet simulations regenerate
each shard's slice in the worker from the tiny picklable spec -- shipping
kilobytes instead of the hundreds of megabytes the materialised arrays
weigh -- and every executor backend sees byte-identical data because the
generator never depends on process state.  Note the slice *is* part of
the seed: ``materialize(0, n)`` and the concatenation of two half-slices
are different (equally valid) fleets, so serial-vs-parallel comparisons
must use the same shard boundaries (``simulate_fleet_sharded`` does).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import TraceError
from repro.types import SECONDS_PER_DAY, ActivityTrace, Session

_MINUTE = 60

#: Archetype table: (name, mixture weight, weekday presence probability,
#: weekend presence probability, mean start-of-day minute, start jitter
#: in minutes, mean session duration in minutes).  Mirrors the scalar
#: archetypes of :mod:`repro.workload.generator` in spirit: office-hours
#: workhorses, nightly batch jobs, weekly reporting, sparse dev boxes,
#: and dormant databases.
_ARCHETYPES: Tuple[Tuple[str, float, float, float, int, int, int], ...] = (
    ("workhours", 0.35, 0.90, 0.10, 9 * 60, 45, 7 * 60),
    ("nightly", 0.25, 0.95, 0.95, 2 * 60, 20, 90),
    ("weekly", 0.15, 0.13, 0.13, 11 * 60, 60, 3 * 60),
    ("sparse", 0.15, 0.20, 0.12, 13 * 60, 180, 45),
    ("dormant", 0.10, 0.02, 0.02, 15 * 60, 240, 30),
)


@dataclass(frozen=True)
class FleetSlice:
    """A materialised contiguous slice of a fleet, in columnar form.

    ``sess_offsets`` has length ``n + 1``; database ``d``'s sessions are
    ``starts[sess_offsets[d]:sess_offsets[d+1]]`` paired with ``ends``,
    sorted and non-overlapping.  Ids are index-lexicographic (zero-padded)
    so string order equals index order.
    """

    ids: Tuple[str, ...]
    created_at: np.ndarray
    sess_offsets: np.ndarray
    starts: np.ndarray
    ends: np.ndarray

    @property
    def n(self) -> int:
        return len(self.ids)

    @property
    def n_sessions(self) -> int:
        return int(self.sess_offsets[-1])

    def to_traces(self) -> List[ActivityTrace]:
        """Expand into :class:`ActivityTrace` objects (small slices only:
        this builds per-session Python objects, the cost the columnar
        path exists to avoid).  Used by the equivalence tests to replay
        the identical fleet through the per-actor engine."""
        traces: List[ActivityTrace] = []
        offsets = self.sess_offsets
        for d, database_id in enumerate(self.ids):
            lo, hi = int(offsets[d]), int(offsets[d + 1])
            sessions = [
                Session(int(s), int(e))
                for s, e in zip(self.starts[lo:hi], self.ends[lo:hi])
            ]
            traces.append(
                ActivityTrace(
                    database_id, sessions, created_at=int(self.created_at[d])
                )
            )
        return traces


@dataclass(frozen=True)
class FleetShardSpec:
    """A deterministic, picklable recipe for a synthetic fleet.

    The name distinguishes it from the scalar
    :class:`repro.workload.generator.FleetSpec`: this spec describes a
    fleet that is materialised shard-by-shard into columnar arrays.
    """

    n_databases: int
    span_days: int = 4
    seed: int = 0
    id_prefix: str = "db"
    #: Fraction of databases created in the final third of the span
    #: (the "new database" tail of the paper's Section 8 fleets).
    new_database_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.n_databases <= 0:
            raise TraceError("a fleet needs at least one database")
        if self.span_days < 2:
            raise TraceError("span_days must be at least 2")
        if not 0.0 <= self.new_database_fraction < 1.0:
            raise TraceError("new_database_fraction must be in [0, 1)")

    def _id_width(self) -> int:
        return max(5, len(str(self.n_databases - 1)))

    def materialize(
        self, lo: int = 0, hi: Optional[int] = None
    ) -> FleetSlice:
        """Generate databases ``[lo, hi)`` of the fleet as a
        :class:`FleetSlice`.  Pure function of ``(self, lo, hi)``."""
        if hi is None:
            hi = self.n_databases
        if not 0 <= lo < hi <= self.n_databases:
            raise TraceError(f"invalid fleet slice [{lo}, {hi})")
        n = hi - lo
        days = self.span_days
        rng = np.random.default_rng([self.seed, lo, hi])

        weights = np.array([a[1] for a in _ARCHETYPES])
        arch = rng.choice(len(_ARCHETYPES), size=n, p=weights / weights.sum())
        p_weekday = np.array([a[2] for a in _ARCHETYPES])[arch]
        p_weekend = np.array([a[3] for a in _ARCHETYPES])[arch]
        base_minute = np.array([a[4] for a in _ARCHETYPES])[arch]
        jitter_minutes = np.array([a[5] for a in _ARCHETYPES])[arch]
        duration_minutes = np.array([a[6] for a in _ARCHETYPES])[arch]

        # Per-database phase: a fixed offset around the archetype's mean
        # start-of-day minute, then per-day jitter on top.
        phase = base_minute + rng.integers(
            -jitter_minutes, jitter_minutes + 1, size=n
        )

        day_index = np.arange(days)
        is_weekend = (day_index % 7) >= 5
        presence_p = np.where(
            is_weekend[np.newaxis, :],
            p_weekend[:, np.newaxis],
            p_weekday[:, np.newaxis],
        )
        present = rng.random((n, days)) < presence_p

        # New databases exist only from their creation day onward.
        created_day = np.zeros(n, dtype=np.int64)
        if self.new_database_fraction > 0.0:
            is_new = rng.random(n) < self.new_database_fraction
            first_new_day = max(1, (2 * days) // 3)
            created_day[is_new] = rng.integers(
                first_new_day, days, size=int(is_new.sum())
            )
        present &= day_index[np.newaxis, :] >= created_day[:, np.newaxis]

        # Per-(database, day) session: start = day + phase + jitter,
        # clamped so every session stays inside its day (which also keeps
        # sessions sorted and non-overlapping without a sweep).
        day_jitter = rng.integers(
            -jitter_minutes[:, np.newaxis],
            jitter_minutes[:, np.newaxis] + 1,
            size=(n, days),
        )
        start_minute = np.clip(
            phase[:, np.newaxis] + day_jitter, 0, 24 * 60 - 2
        )
        duration_scale = rng.random((n, days)) + 0.5
        dur_minute = np.maximum(
            1, (duration_minutes[:, np.newaxis] * duration_scale).astype(np.int64)
        )
        end_minute = np.minimum(start_minute + dur_minute, 24 * 60)

        d_idx, day_idx = np.nonzero(present)
        day_base = day_idx * SECONDS_PER_DAY
        flat_starts = day_base + start_minute[d_idx, day_idx] * _MINUTE
        flat_ends = day_base + end_minute[d_idx, day_idx] * _MINUTE

        counts = present.sum(axis=1)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])

        width = self._id_width()
        ids = tuple(
            f"{self.id_prefix}-{i:0{width}d}" for i in range(lo, hi)
        )
        created_at = created_day * SECONDS_PER_DAY
        return FleetSlice(
            ids=ids,
            created_at=created_at,
            sess_offsets=offsets,
            starts=flat_starts.astype(np.int64),
            ends=flat_ends.astype(np.int64),
        )


# ---------------------------------------------------------------------------
# Concept-drift wrappers (online-tuning scenarios)
# ---------------------------------------------------------------------------

#: Drift kinds the online-tuning scenarios exercise.
DRIFT_KINDS = ("archetype_switch", "dst_shift", "migration")


def _flatten(fleet: FleetSlice) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-session (database index, start, end) arrays of a slice."""
    counts = np.diff(fleet.sess_offsets)
    d_idx = np.repeat(np.arange(fleet.n, dtype=np.int64), counts)
    return d_idx, fleet.starts.copy(), fleet.ends.copy()


def _rebuild(
    fleet: FleetSlice,
    d_idx: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    created_at: Optional[np.ndarray] = None,
) -> FleetSlice:
    """Re-pack flat per-session arrays into a valid :class:`FleetSlice`.

    Sorts per database by start, truncates any overlap into the next
    session, and drops sessions emptied by the truncation -- so every
    drift transform yields sorted, non-overlapping sessions by
    construction, whatever it did to the raw timestamps.
    """
    order = np.lexsort((starts, d_idx))
    d, s, e = d_idx[order], starts[order], ends[order]
    e = np.maximum(e, s + 1)
    same_db_next = np.concatenate((d[1:] == d[:-1], [False]))
    next_start = np.concatenate((s[1:], np.asarray([np.iinfo(np.int64).max])))
    e = np.where(same_db_next, np.minimum(e, next_start), e)
    keep = (e > s) & (s >= 0)
    d, s, e = d[keep], s[keep], e[keep]
    counts = np.bincount(d, minlength=fleet.n)
    offsets = np.zeros(fleet.n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return FleetSlice(
        ids=fleet.ids,
        created_at=(
            created_at if created_at is not None else fleet.created_at
        ),
        sess_offsets=offsets,
        starts=s.astype(np.int64),
        ends=e.astype(np.int64),
    )


@dataclass(frozen=True)
class DriftSpec:
    """A fleet whose activity pattern changes mid-trace.

    Wraps a :class:`FleetShardSpec` with one of three concept drifts the
    static monthly knob sweep cannot track:

    - ``archetype_switch``: at ``at_day`` every database jumps to an
      independently drawn archetype/phase (a re-purposed fleet);
    - ``dst_shift``: sessions from ``at_day`` onward move by
      ``shift_minutes`` (daylight-saving or holiday schedule change);
    - ``migration``: a deterministic ``fraction`` of databases moves by
      ``shift_minutes`` from ``at_day`` onward (a region-mix change --
      tenants migrating in from another timezone).

    Pure and picklable exactly like :class:`FleetShardSpec`:
    ``materialize(lo, hi)`` depends only on ``(self, lo, hi)``, so the
    sharded fleet path regenerates drifted shards in workers unchanged.
    """

    base: FleetShardSpec
    kind: str
    #: Day (0-based, inside the span) the drift takes effect.
    at_day: int
    #: Schedule shift for ``dst_shift``/``migration`` (may be negative).
    shift_minutes: int = 60
    #: Seed offset of the post-switch fleet for ``archetype_switch``.
    switch_seed_offset: int = 1
    #: Fraction of databases that move for ``migration``.
    fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.kind not in DRIFT_KINDS:
            raise TraceError(
                f"unknown drift kind {self.kind!r} (choose from "
                f"{', '.join(DRIFT_KINDS)})"
            )
        if not 0 < self.at_day < self.base.span_days:
            raise TraceError(
                f"at_day must fall inside the span (0, {self.base.span_days}), "
                f"got {self.at_day}"
            )
        if self.kind in ("dst_shift", "migration") and self.shift_minutes == 0:
            raise TraceError(f"{self.kind} needs a non-zero shift_minutes")
        if self.kind == "migration" and not 0.0 < self.fraction <= 1.0:
            raise TraceError(
                f"migration fraction must be in (0, 1], got {self.fraction}"
            )
        if self.kind == "archetype_switch" and self.switch_seed_offset == 0:
            raise TraceError(
                "archetype_switch needs a non-zero switch_seed_offset "
                "(offset 0 reproduces the base fleet: no drift)"
            )

    @property
    def n_databases(self) -> int:
        return self.base.n_databases

    @property
    def span_days(self) -> int:
        return self.base.span_days

    def materialize(self, lo: int = 0, hi: Optional[int] = None) -> FleetSlice:
        """Generate databases ``[lo, hi)`` of the drifted fleet."""
        if hi is None:
            hi = self.base.n_databases
        fleet = self.base.materialize(lo, hi)
        t = self.at_day * SECONDS_PER_DAY
        if self.kind == "archetype_switch":
            alt = replace(
                self.base, seed=self.base.seed + self.switch_seed_offset
            ).materialize(lo, hi)
            return self._splice(fleet, alt, t)
        d_idx, starts, ends = _flatten(fleet)
        shift_s = self.shift_minutes * _MINUTE
        if self.kind == "dst_shift":
            moved = starts >= t
        else:  # migration: a deterministic subset of databases moves
            rng = np.random.default_rng([self.base.seed, 7919, lo, hi])
            moved_db = rng.random(fleet.n) < self.fraction
            moved = moved_db[d_idx] & (starts >= t)
        starts = np.where(moved, starts + shift_s, starts)
        ends = np.where(moved, ends + shift_s, ends)
        return _rebuild(fleet, d_idx, starts, ends)

    @staticmethod
    def _splice(a: FleetSlice, b: FleetSlice, t: int) -> FleetSlice:
        """Pre-``t`` sessions of ``a`` followed by post-``t`` sessions of
        ``b``; a session of ``a`` straddling ``t`` is truncated at the
        switch instant."""
        da, sa, ea = _flatten(a)
        db, sb, eb = _flatten(b)
        keep_a = sa < t
        ea = np.minimum(ea, t)
        keep_b = sb >= t
        d_idx = np.concatenate((da[keep_a], db[keep_b]))
        starts = np.concatenate((sa[keep_a], sb[keep_b]))
        ends = np.concatenate((ea[keep_a], eb[keep_b]))
        created_at = np.minimum(a.created_at, b.created_at)
        return _rebuild(a, d_idx, starts, ends, created_at=created_at)

