"""Capacity scalers: reactive tracking vs proactive envelopes.

The reactive scaler is today's serverless behaviour lifted to levels:
allocation follows demand, but scale-ups take a reaction lag (during which
the workload is throttled) and scale-downs are held back by a cool-down
(during which cores idle).  The proactive scaler pre-computes a per
time-of-day demand envelope from the last ``h`` days -- the Algorithm 4
idea generalised from "will there be a login?" to "how many cores will be
needed?" -- and raises allocation ahead of predicted demand.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autoscale.demand import CapacityTrace
from repro.errors import ConfigError
from repro.types import SECONDS_PER_DAY


class ReactiveScaler:
    """Demand-following allocation with reaction lag and cool-down."""

    name = "reactive"

    def __init__(self, reaction_slots: int = 1, cooldown_slots: int = 12):
        if reaction_slots < 0 or cooldown_slots < 0:
            raise ConfigError("scaler lags cannot be negative")
        self.reaction_slots = reaction_slots
        self.cooldown_slots = cooldown_slots

    def allocate(
        self, trace: CapacityTrace, window_start: int, window_end: int
    ) -> np.ndarray:
        demand = trace.window(window_start, window_end)
        n = len(demand)
        allocation = np.zeros(n, dtype=np.int32)
        current = 0
        hold = 0
        for i in range(n):
            # Scale-up decisions see demand `reaction_slots` in the past:
            # the workload throttles until the new capacity arrives.
            visible = demand[i - self.reaction_slots] if i >= self.reaction_slots else 0
            if visible > current:
                current = int(visible)
                hold = self.cooldown_slots
            elif visible < current:
                if hold > 0:
                    hold -= 1
                else:
                    current = int(visible)
            allocation[i] = current
        return allocation


class ProactiveScaler:
    """Envelope-based allocation: the q-quantile of the demand at the same
    time-of-day over the previous ``history_days`` days, blended with the
    reactive signal (allocation never drops below what demand already
    forced; the envelope only *adds* pre-provisioned capacity)."""

    name = "proactive"

    def __init__(
        self,
        history_days: int = 28,
        quantile: float = 0.8,
        reaction_slots: int = 1,
        cooldown_slots: int = 12,
    ):
        if not 0.0 < quantile <= 1.0:
            raise ConfigError("quantile must be in (0, 1]")
        if history_days <= 0:
            raise ConfigError("history_days must be positive")
        self.history_days = history_days
        self.quantile = quantile
        self._reactive = ReactiveScaler(reaction_slots, cooldown_slots)

    def envelope(
        self, trace: CapacityTrace, window_start: int, window_end: int
    ) -> np.ndarray:
        """Predicted capacity per slot of the window from past days."""
        slots_per_day = SECONDS_PER_DAY // trace.slot_s
        demand = trace.window(window_start, window_end)
        n = len(demand)
        first_slot = trace.slot_index(window_start)
        history = np.zeros((self.history_days, n), dtype=np.int16)
        for day in range(1, self.history_days + 1):
            lo = first_slot - day * slots_per_day
            if lo < 0:
                continue  # before the trace: counts as zero demand
            history[day - 1] = trace.levels[lo : lo + n]
        return np.quantile(history, self.quantile, axis=0).astype(np.int32)

    def allocate(
        self, trace: CapacityTrace, window_start: int, window_end: int
    ) -> np.ndarray:
        envelope = self.envelope(trace, window_start, window_end)
        reactive = self._reactive.allocate(trace, window_start, window_end)
        return np.maximum(envelope, reactive)


@dataclass(frozen=True)
class ScalerEvaluation:
    """Throttling vs over-provisioning for one database and window."""

    scaler: str
    demanded_core_s: int
    allocated_core_s: int
    #: Core-seconds of demand above allocation (the workload throttled).
    throttled_core_s: int
    #: Core-seconds of allocation above demand (provider-paid idle).
    overprovisioned_core_s: int

    @property
    def throttled_percent(self) -> float:
        if self.demanded_core_s == 0:
            return 0.0
        return 100.0 * self.throttled_core_s / self.demanded_core_s

    @property
    def overprovisioned_percent(self) -> float:
        if self.allocated_core_s == 0:
            return 0.0
        return 100.0 * self.overprovisioned_core_s / self.allocated_core_s


def evaluate_scaler(
    scaler,
    trace: CapacityTrace,
    window_start: int,
    window_end: int,
) -> ScalerEvaluation:
    """Score one scaler on one demand trace over a window."""
    demand = trace.window(window_start, window_end).astype(np.int64)
    allocation = scaler.allocate(trace, window_start, window_end).astype(np.int64)
    throttled = np.maximum(demand - allocation, 0).sum() * trace.slot_s
    overprovisioned = np.maximum(allocation - demand, 0).sum() * trace.slot_s
    return ScalerEvaluation(
        scaler=scaler.name,
        demanded_core_s=int(demand.sum()) * trace.slot_s,
        allocated_core_s=int(allocation.sum()) * trace.slot_s,
        throttled_core_s=int(throttled),
        overprovisioned_core_s=int(overprovisioned),
    )
