"""Durable event-sourced control plane: WAL, checkpoints, recovery.

The in-memory :class:`~repro.controlplane.workflows.WorkflowEngine` loses
every queued resume/pause workflow when the control plane dies.  This
package gives it a durability spine:

* :mod:`~repro.controlplane.durability.wal` -- an append-only, segmented,
  checksummed write-ahead log journaling every workflow state transition
  before it is applied;
* :mod:`~repro.controlplane.durability.checkpoint` -- periodic crash-safe
  full-state checkpoints bounding recovery replay to the WAL suffix;
* :mod:`~repro.controlplane.durability.engine` -- the
  :class:`DurableWorkflowEngine` tying both together with exactly-once
  crash recovery.

See ``docs/durability.md`` for the format and recovery semantics.
"""

from repro.controlplane.durability.checkpoint import (
    CHECKPOINT_VERSION,
    KEEP_CHECKPOINTS,
    checkpoint_paths,
    load_latest_checkpoint,
    write_checkpoint,
)
from repro.controlplane.durability.engine import (
    DurableWorkflowEngine,
    terminal_record_counts,
)
from repro.controlplane.durability.wal import (
    CORRUPT_FAULT_POINT,
    CRASH_FAULT_POINT,
    RECORD_MAGIC,
    TORN_FAULT_POINT,
    WriteAheadLog,
    encode_record,
    read_log,
    segment_paths,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "KEEP_CHECKPOINTS",
    "CORRUPT_FAULT_POINT",
    "CRASH_FAULT_POINT",
    "TORN_FAULT_POINT",
    "RECORD_MAGIC",
    "DurableWorkflowEngine",
    "WriteAheadLog",
    "checkpoint_paths",
    "encode_record",
    "load_latest_checkpoint",
    "read_log",
    "segment_paths",
    "terminal_record_counts",
    "write_checkpoint",
]
