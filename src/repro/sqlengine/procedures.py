"""The paper's stored procedures, executed as SQL text on the SQL engine.

These classes mirror the T-SQL of Algorithms 2, 3, and 5 statement for
statement (our engine has no procedural control flow, so IF/WHILE logic
lives in Python while every data access is real SQL).  They expose the same
interface as :class:`repro.storage.history.HistoryStore` /
:class:`repro.storage.metadata.MetadataStore`, which lets the test suite
assert the direct (B-tree) implementations and the SQL implementations are
observationally equivalent, and lets the reference predictor (Algorithm 4)
run on either backend.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.sqlengine.engine import SqlEngine
from repro.storage.database import Database
from repro.storage.history import BYTES_PER_TUPLE, DeleteOldHistoryResult
from repro.types import SECONDS_PER_DAY, EventType, HistoryEvent

_CREATE_HISTORY = """
CREATE TABLE sys.pause_resume_history (
    time_snapshot BIGINT PRIMARY KEY,
    event_type INT NOT NULL
)
"""

_EXISTS_TIMESTAMP = """
SELECT * FROM sys.pause_resume_history WHERE time_snapshot = @time
"""

_INSERT_HISTORY = """
INSERT INTO sys.pause_resume_history (time_snapshot, event_type)
VALUES (@time, @type)
"""

_MIN_TIMESTAMP = """
SELECT MIN(time_snapshot) AS min_ts FROM sys.pause_resume_history
"""

_MAX_TIMESTAMP = """
SELECT MAX(time_snapshot) AS max_ts FROM sys.pause_resume_history
"""

_DELETE_OLD = """
DELETE FROM sys.pause_resume_history
WHERE @minTimestamp < time_snapshot AND time_snapshot < @historyStart
"""

_FIRST_LAST_LOGIN = """
SELECT MIN(time_snapshot) AS first_login, MAX(time_snapshot) AS last_login
FROM sys.pause_resume_history
WHERE event_type = 1 AND
      @winStartPrevDay <= time_snapshot AND time_snapshot <= @winEndPrevDay
"""

_COUNT_TUPLES = """
SELECT COUNT(*) AS n FROM sys.pause_resume_history
"""

_ALL_EVENTS = """
SELECT time_snapshot, event_type FROM sys.pause_resume_history
"""

_LOGINS = """
SELECT time_snapshot FROM sys.pause_resume_history WHERE event_type = 1
"""


class SqlHistoryProcedures:
    """Algorithms 2 and 3 running as parameterized SQL (Section 5)."""

    def __init__(self, database: Optional[Database] = None):
        if database is None:
            database = Database("tenant")
        self.database = database
        self.engine = SqlEngine(database)
        if "sys.pause_resume_history" not in database:
            self.engine.execute(_CREATE_HISTORY)

    # -- Algorithm 2 ------------------------------------------------------

    def insert_history(self, time_snapshot: int, event_type: EventType) -> bool:
        """``sys.InsertHistory``: insert unless the timestamp exists."""
        if self.engine.exists(_EXISTS_TIMESTAMP, {"time": time_snapshot}):
            return False
        self.engine.execute(
            _INSERT_HISTORY, {"time": time_snapshot, "type": int(event_type)}
        )
        return True

    def bulk_load(self, events) -> int:
        inserted = 0
        for event in events:
            if self.insert_history(event.time_snapshot, event.event_type):
                inserted += 1
        return inserted

    # -- Algorithm 3 ------------------------------------------------------

    def delete_old_history(self, history_days: int, now: int) -> DeleteOldHistoryResult:
        """``sys.DeleteOldHistory``: trim to h days, report the @old flag."""
        history_start = now - history_days * SECONDS_PER_DAY
        min_timestamp = self.engine.execute(_MIN_TIMESTAMP).scalar()
        if min_timestamp is None or min_timestamp >= history_start:
            return DeleteOldHistoryResult(
                old=False, deleted=0, min_timestamp=min_timestamp
            )
        deleted = self.engine.execute(
            _DELETE_OLD,
            {"minTimestamp": min_timestamp, "historyStart": history_start},
        ).rowcount
        return DeleteOldHistoryResult(
            old=True, deleted=deleted, min_timestamp=min_timestamp
        )

    # -- Queries used by Algorithm 4 --------------------------------------

    def first_last_login(
        self, window_start: int, window_end: int
    ) -> Tuple[Optional[int], Optional[int]]:
        """The MIN/MAX range query of Algorithm 4 lines 19-24, verbatim."""
        row = self.engine.execute(
            _FIRST_LAST_LOGIN,
            {"winStartPrevDay": window_start, "winEndPrevDay": window_end},
        ).rows[0]
        return row["first_login"], row["last_login"]

    def login_timestamps(self) -> Sequence[int]:
        return [row["time_snapshot"] for row in self.engine.execute(_LOGINS).rows]

    def all_events(self) -> List[HistoryEvent]:
        return [
            HistoryEvent(row["time_snapshot"], EventType(row["event_type"]))
            for row in self.engine.execute(_ALL_EVENTS).rows
        ]

    # -- Overhead accounting ----------------------------------------------

    @property
    def tuple_count(self) -> int:
        return self.engine.execute(_COUNT_TUPLES).scalar()

    def size_bytes(self) -> int:
        return self.tuple_count * BYTES_PER_TUPLE

    def min_timestamp(self) -> Optional[int]:
        return self.engine.execute(_MIN_TIMESTAMP).scalar()

    def max_timestamp(self) -> Optional[int]:
        return self.engine.execute(_MAX_TIMESTAMP).scalar()


_CREATE_METADATA = """
CREATE TABLE sys.databases (
    database_id TEXT PRIMARY KEY,
    state TEXT NOT NULL,
    start_of_pred_activity BIGINT NOT NULL,
    node_id TEXT,
    created_at BIGINT
)
"""

_CREATE_METADATA_INDEX = """
CREATE INDEX ON sys.databases (start_of_pred_activity)
"""

_REGISTER = """
INSERT INTO sys.databases (database_id, state, start_of_pred_activity, node_id, created_at)
VALUES (@id, @state, 0, @node, @created)
"""

_SET_STATE = """
UPDATE sys.databases SET state = @state WHERE database_id = @id
"""

_RECORD_PHYSICAL_PAUSE = """
UPDATE sys.databases
SET state = 'physical_pause', start_of_pred_activity = @start
WHERE database_id = @id
"""

#: The SELECT of Algorithm 5, lines 2-6.
_PREWARM_SCAN = """
SELECT database_id FROM sys.databases
WHERE state = 'physical_pause' AND
      @now + @k <= start_of_pred_activity AND
      start_of_pred_activity <= @now + @k + @period
ORDER BY database_id
"""


class SqlMetadataProcedures:
    """The metadata-store operations of Algorithms 1 (line 31) and 5."""

    def __init__(self, database: Optional[Database] = None):
        if database is None:
            database = Database("control_plane")
        self.database = database
        self.engine = SqlEngine(database)
        if "sys.databases" not in database:
            self.engine.execute(_CREATE_METADATA)
            self.engine.execute(_CREATE_METADATA_INDEX)

    def register(
        self,
        database_id: str,
        state: str = "resumed",
        node_id: Optional[str] = None,
        created_at: Optional[int] = None,
    ) -> None:
        self.engine.execute(
            _REGISTER,
            {"id": database_id, "state": state, "node": node_id, "created": created_at},
        )

    def set_state(self, database_id: str, state: str) -> None:
        self.engine.execute(_SET_STATE, {"id": database_id, "state": state})

    def record_physical_pause(self, database_id: str, pred_start: int) -> None:
        self.engine.execute(
            _RECORD_PHYSICAL_PAUSE, {"id": database_id, "start": pred_start}
        )

    def databases_to_prewarm(self, now: int, prewarm_s: int, period_s: int) -> List[str]:
        rows = self.engine.execute(
            _PREWARM_SCAN, {"now": now, "k": prewarm_s, "period": period_s}
        ).rows
        return [row["database_id"] for row in rows]
