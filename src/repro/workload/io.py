"""Trace import/export.

Downstream users with real telemetry can replay their own fleets: a trace
file is JSON Lines, one database per line, with epoch-second sessions --
the same (timestamp, event) information the paper's activity tracker
stores.  Exports round-trip losslessly.

Line schema::

    {"database_id": "...", "created_at": 0,
     "sessions": [[start, end], ...]}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List

from repro.errors import TraceError
from repro.types import ActivityTrace, Session


def trace_to_dict(trace: ActivityTrace) -> dict:
    return {
        "database_id": trace.database_id,
        "created_at": trace.created_at,
        "sessions": [[s.start, s.end] for s in trace.sessions],
    }


def trace_from_dict(data: dict) -> ActivityTrace:
    try:
        database_id = data["database_id"]
        sessions = [Session(int(a), int(b)) for a, b in data["sessions"]]
        created_at = data.get("created_at")
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"malformed trace record: {exc}") from exc
    return ActivityTrace(database_id, sessions, created_at=created_at)


def export_traces(traces: Iterable[ActivityTrace], path: Path) -> int:
    """Write traces as JSONL; returns the number written."""
    path = Path(path)
    n = 0
    with path.open("w", encoding="utf-8") as handle:
        for trace in traces:
            handle.write(json.dumps(trace_to_dict(trace), separators=(",", ":")))
            handle.write("\n")
            n += 1
    return n


def import_traces(path: Path) -> List[ActivityTrace]:
    """Read a JSONL trace file; validates every record."""
    traces: List[ActivityTrace] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(
                    f"{path}:{line_number}: invalid JSON: {exc}"
                ) from exc
            traces.append(trace_from_dict(data))
    seen = set()
    for trace in traces:
        if trace.database_id in seen:
            raise TraceError(
                f"duplicate database_id {trace.database_id!r} in {path}"
            )
        seen.add(trace.database_id)
    return traces
