"""Recursive-descent parser for the supported SQL subset.

Grammar (informal)::

    statement   := select | insert | delete | update | create_table
                 | create_index | explain
    select      := SELECT items FROM table [WHERE expr] [GROUP BY col]
                   [ORDER BY col [ASC|DESC] {, ...}] [LIMIT n]
    items       := '*' | item {',' item}
    item        := expr [AS alias]
    insert      := INSERT INTO table '(' cols ')' VALUES '(' exprs ')'
    delete      := DELETE FROM table [WHERE expr]
    update      := UPDATE table SET col '=' expr {',' ...} [WHERE expr]
    create_table:= CREATE TABLE table '(' coldef {',' coldef} ')'
    coldef      := name type [PRIMARY KEY] [NOT NULL]
    create_index:= CREATE INDEX ON table '(' col ')'
    explain     := EXPLAIN (select | delete | update)

Expressions support AND/OR/NOT, comparisons, + - * /, parentheses,
``IS [NOT] NULL``, ``[NOT] BETWEEN a AND b``, ``[NOT] IN (list)``, the
aggregates MIN/MAX/COUNT, literals, ``@params``, and column references.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SqlSyntaxError
from repro.sqlengine import ast
from repro.sqlengine.lexer import Token, TokenType, tokenize

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}


def parse(sql: str) -> ast.Statement:
    """Parse one SQL statement."""
    return _Parser(tokenize(sql)).parse_statement()


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token-stream helpers
    # ------------------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        self._pos += 1
        return token

    def _check(self, token_type: TokenType, value: Optional[str] = None) -> bool:
        return self._current.matches(token_type, value)

    def _accept(self, token_type: TokenType, value: Optional[str] = None) -> Optional[Token]:
        if self._check(token_type, value):
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, value: Optional[str] = None) -> Token:
        if not self._check(token_type, value):
            want = value or token_type.value
            got = self._current.value or self._current.type.value
            raise SqlSyntaxError(
                f"expected {want!r}, got {got!r}", self._current.position
            )
        return self._advance()

    def _expect_identifier(self) -> str:
        token = self._accept(TokenType.IDENTIFIER)
        if token is None:
            raise SqlSyntaxError(
                f"expected identifier, got {self._current.value!r}",
                self._current.position,
            )
        return token.value

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        if self._accept(TokenType.KEYWORD, "EXPLAIN"):
            inner = self._parse_explainable()
            self._expect(TokenType.EOF)
            return ast.Explain(inner)
        if self._check(TokenType.KEYWORD, "SELECT"):
            statement = self._parse_select()
        elif self._check(TokenType.KEYWORD, "INSERT"):
            statement = self._parse_insert()
        elif self._check(TokenType.KEYWORD, "DELETE"):
            statement = self._parse_delete()
        elif self._check(TokenType.KEYWORD, "UPDATE"):
            statement = self._parse_update()
        elif self._check(TokenType.KEYWORD, "CREATE"):
            statement = self._parse_create()
        else:
            raise SqlSyntaxError(
                f"unsupported statement start {self._current.value!r}",
                self._current.position,
            )
        self._expect(TokenType.EOF)
        return statement

    def _parse_explainable(self) -> ast.Statement:
        if self._check(TokenType.KEYWORD, "SELECT"):
            return self._parse_select()
        if self._check(TokenType.KEYWORD, "DELETE"):
            return self._parse_delete()
        if self._check(TokenType.KEYWORD, "UPDATE"):
            return self._parse_update()
        raise SqlSyntaxError(
            "EXPLAIN supports SELECT, DELETE, and UPDATE",
            self._current.position,
        )

    def _parse_select(self) -> ast.Select:
        self._expect(TokenType.KEYWORD, "SELECT")
        items = self._parse_select_items()
        table = None
        if self._accept(TokenType.KEYWORD, "FROM"):
            table = self._expect_identifier()
        where = self._parse_optional_where()
        group_by = None
        if self._accept(TokenType.KEYWORD, "GROUP"):
            self._expect(TokenType.KEYWORD, "BY")
            group_by = self._expect_identifier()
        order_by: List[ast.OrderItem] = []
        if self._accept(TokenType.KEYWORD, "ORDER"):
            self._expect(TokenType.KEYWORD, "BY")
            while True:
                column = self._expect_identifier()
                descending = False
                if self._accept(TokenType.KEYWORD, "DESC"):
                    descending = True
                else:
                    self._accept(TokenType.KEYWORD, "ASC")
                order_by.append(ast.OrderItem(column, descending))
                if not self._accept(TokenType.PUNCT, ","):
                    break
        limit = None
        if self._accept(TokenType.KEYWORD, "LIMIT"):
            token = self._expect(TokenType.INTEGER)
            limit = int(token.value)
        return ast.Select(
            tuple(items), table, where, group_by, tuple(order_by), limit
        )

    def _parse_select_items(self) -> List[ast.SelectItem]:
        if self._accept(TokenType.OPERATOR, "*"):
            return [ast.SelectItem(ast.Literal(None), star=True)]
        items = []
        while True:
            expression = self._parse_expression()
            alias = None
            if self._accept(TokenType.KEYWORD, "AS"):
                alias = self._expect_identifier()
            items.append(ast.SelectItem(expression, alias))
            if not self._accept(TokenType.PUNCT, ","):
                break
        return items

    def _parse_insert(self) -> ast.Insert:
        self._expect(TokenType.KEYWORD, "INSERT")
        self._expect(TokenType.KEYWORD, "INTO")
        table = self._expect_identifier()
        self._expect(TokenType.PUNCT, "(")
        columns = [self._expect_identifier()]
        while self._accept(TokenType.PUNCT, ","):
            columns.append(self._expect_identifier())
        self._expect(TokenType.PUNCT, ")")
        self._expect(TokenType.KEYWORD, "VALUES")
        self._expect(TokenType.PUNCT, "(")
        values = [self._parse_expression()]
        while self._accept(TokenType.PUNCT, ","):
            values.append(self._parse_expression())
        self._expect(TokenType.PUNCT, ")")
        if len(columns) != len(values):
            raise SqlSyntaxError(
                f"INSERT has {len(columns)} columns but {len(values)} values",
                self._current.position,
            )
        return ast.Insert(table, tuple(columns), tuple(values))

    def _parse_delete(self) -> ast.Delete:
        self._expect(TokenType.KEYWORD, "DELETE")
        self._expect(TokenType.KEYWORD, "FROM")
        table = self._expect_identifier()
        return ast.Delete(table, self._parse_optional_where())

    def _parse_update(self) -> ast.Update:
        self._expect(TokenType.KEYWORD, "UPDATE")
        table = self._expect_identifier()
        self._expect(TokenType.KEYWORD, "SET")
        assignments = []
        while True:
            column = self._expect_identifier()
            self._expect(TokenType.OPERATOR, "=")
            assignments.append(ast.Assignment(column, self._parse_expression()))
            if not self._accept(TokenType.PUNCT, ","):
                break
        return ast.Update(table, tuple(assignments), self._parse_optional_where())

    def _parse_create(self) -> ast.Statement:
        self._expect(TokenType.KEYWORD, "CREATE")
        if self._accept(TokenType.KEYWORD, "INDEX"):
            self._expect(TokenType.KEYWORD, "ON")
            table = self._expect_identifier()
            self._expect(TokenType.PUNCT, "(")
            column = self._expect_identifier()
            self._expect(TokenType.PUNCT, ")")
            return ast.CreateIndex(table, column)
        self._expect(TokenType.KEYWORD, "TABLE")
        table = self._expect_identifier()
        self._expect(TokenType.PUNCT, "(")
        columns = [self._parse_column_def()]
        while self._accept(TokenType.PUNCT, ","):
            columns.append(self._parse_column_def())
        self._expect(TokenType.PUNCT, ")")
        return ast.CreateTable(table, tuple(columns))

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._expect_identifier()
        type_token = self._advance()
        if type_token.type is not TokenType.KEYWORD or type_token.value not in (
            "BIGINT",
            "INT",
            "FLOAT",
            "TEXT",
        ):
            raise SqlSyntaxError(
                f"expected a column type, got {type_token.value!r}",
                type_token.position,
            )
        primary_key = False
        not_null = False
        while True:
            if self._accept(TokenType.KEYWORD, "PRIMARY"):
                self._expect(TokenType.KEYWORD, "KEY")
                primary_key = True
            elif self._accept(TokenType.KEYWORD, "NOT"):
                self._expect(TokenType.KEYWORD, "NULL")
                not_null = True
            else:
                break
        return ast.ColumnDef(name, type_token.value, primary_key, not_null)

    def _parse_optional_where(self) -> Optional[ast.Expression]:
        if self._accept(TokenType.KEYWORD, "WHERE"):
            return self._parse_expression()
        return None

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept(TokenType.KEYWORD, "OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._accept(TokenType.KEYWORD, "AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._accept(TokenType.KEYWORD, "NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_additive()
        if self._accept(TokenType.KEYWORD, "IS"):
            negated = bool(self._accept(TokenType.KEYWORD, "NOT"))
            self._expect(TokenType.KEYWORD, "NULL")
            return ast.IsNull(left, negated)
        negated = False
        if self._check(TokenType.KEYWORD, "NOT") and self._peek_is_between_or_in():
            self._advance()
            negated = True
        if self._accept(TokenType.KEYWORD, "BETWEEN"):
            low = self._parse_additive()
            self._expect(TokenType.KEYWORD, "AND")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)
        if self._accept(TokenType.KEYWORD, "IN"):
            self._expect(TokenType.PUNCT, "(")
            items = [self._parse_additive()]
            while self._accept(TokenType.PUNCT, ","):
                items.append(self._parse_additive())
            self._expect(TokenType.PUNCT, ")")
            return ast.InList(left, tuple(items), negated)
        if negated:  # pragma: no cover - guarded by _peek_is_between_or_in
            raise SqlSyntaxError("dangling NOT", self._current.position)
        if self._current.type is TokenType.OPERATOR and self._current.value in _COMPARISONS:
            op = self._advance().value
            if op == "!=":
                op = "<>"
            return ast.BinaryOp(op, left, self._parse_additive())
        return left

    def _peek_is_between_or_in(self) -> bool:
        nxt = self._tokens[self._pos + 1]
        return nxt.type is TokenType.KEYWORD and nxt.value in ("BETWEEN", "IN")

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while self._current.type is TokenType.OPERATOR and self._current.value in ("+", "-"):
            op = self._advance().value
            left = ast.BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while self._current.type is TokenType.OPERATOR and self._current.value in ("*", "/"):
            op = self._advance().value
            left = ast.BinaryOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> ast.Expression:
        if self._accept(TokenType.OPERATOR, "-"):
            return ast.UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._current
        if token.type is TokenType.INTEGER:
            self._advance()
            return ast.Literal(int(token.value))
        if token.type is TokenType.FLOAT:
            self._advance()
            return ast.Literal(float(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.PARAM:
            self._advance()
            return ast.Param(token.value)
        if token.type is TokenType.KEYWORD and token.value == "NULL":
            self._advance()
            return ast.Literal(None)
        if token.type is TokenType.KEYWORD and token.value in ("MIN", "MAX", "COUNT"):
            self._advance()
            self._expect(TokenType.PUNCT, "(")
            if token.value == "COUNT" and self._accept(TokenType.OPERATOR, "*"):
                argument = None
            else:
                argument = self._parse_expression()
            self._expect(TokenType.PUNCT, ")")
            return ast.Aggregate(token.value, argument)
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return ast.ColumnRef(token.value)
        if token.matches(TokenType.PUNCT, "("):
            self._advance()
            inner = self._parse_expression()
            self._expect(TokenType.PUNCT, ")")
            return inner
        raise SqlSyntaxError(
            f"unexpected token {token.value!r} in expression", token.position
        )
