"""Table schemas: typed columns with the constraints the paper's stores need.

``sys.pause_resume_history`` has two columns -- ``time_snapshot BIGINT``
(unique, clustered index) and ``event_type INT`` -- while ``sys.databases``
carries the per-database state and the start of the next predicted activity
(Sections 5 and 7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """The SQL column types the engine supports."""

    BIGINT = "BIGINT"
    INT = "INT"
    FLOAT = "FLOAT"
    TEXT = "TEXT"

    def validate(self, value: Any) -> Any:
        """Coerce/validate a Python value for this column type."""
        if value is None:
            return None
        if self in (ColumnType.BIGINT, ColumnType.INT):
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"expected an integer for {self.value}, got {value!r}")
            return value
        if self is ColumnType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"expected a number for FLOAT, got {value!r}")
            return float(value)
        if not isinstance(value, str):
            raise SchemaError(f"expected a string for TEXT, got {value!r}")
        return value


@dataclass(frozen=True)
class Column:
    """One column definition."""

    name: str
    type: ColumnType
    nullable: bool = True

    def validate(self, value: Any) -> Any:
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is NOT NULL")
            return None
        return self.type.validate(value)


@dataclass(frozen=True)
class TableSchema:
    """Schema of a table: ordered columns plus the clustered-key column.

    ``primary_key`` names the column carrying the clustered B-tree index
    (``time_snapshot`` for the history store); its values must be unique.
    """

    name: str
    columns: Tuple[Column, ...]
    primary_key: str

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        if self.primary_key not in names:
            raise SchemaError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def column_index(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def validate_row(self, row: Dict[str, Any]) -> Tuple[Any, ...]:
        """Validate a column-name -> value mapping into a storage tuple.

        Missing nullable columns default to None; unknown columns and NOT
        NULL violations raise :class:`SchemaError`.
        """
        unknown = set(row) - set(self.column_names)
        if unknown:
            raise SchemaError(
                f"unknown columns {sorted(unknown)} for table {self.name!r}"
            )
        values: List[Any] = []
        for col in self.columns:
            values.append(col.validate(row.get(col.name)))
        pk = values[self.column_index(self.primary_key)]
        if pk is None:
            raise SchemaError(
                f"primary key {self.primary_key!r} of {self.name!r} cannot be NULL"
            )
        return tuple(values)

    def row_to_dict(self, values: Sequence[Any]) -> Dict[str, Any]:
        """Inverse of :meth:`validate_row` for a stored tuple."""
        return dict(zip(self.column_names, values))


def history_schema() -> TableSchema:
    """Schema of ``sys.pause_resume_history`` (Section 5)."""
    return TableSchema(
        name="sys.pause_resume_history",
        columns=(
            Column("time_snapshot", ColumnType.BIGINT, nullable=False),
            Column("event_type", ColumnType.INT, nullable=False),
        ),
        primary_key="time_snapshot",
    )


def metadata_schema() -> TableSchema:
    """Schema of the region metadata store ``sys.databases`` (Section 7)."""
    return TableSchema(
        name="sys.databases",
        columns=(
            Column("database_id", ColumnType.TEXT, nullable=False),
            Column("state", ColumnType.TEXT, nullable=False),
            Column("start_of_pred_activity", ColumnType.BIGINT, nullable=False),
            Column("node_id", ColumnType.TEXT),
            Column("created_at", ColumnType.BIGINT),
        ),
        primary_key="database_id",
    )
