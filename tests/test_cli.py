"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.policy == "proactive"
        assert args.region == "EU1"
        assert args.databases == 200

    def test_figures_selection(self):
        args = build_parser().parse_args(["figures", "--which", "fig3", "fig9"])
        assert args.which == ["fig3", "fig9"]

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--which", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 7077
        assert args.max_batch_size == 64
        assert not args.once


class TestCommands:
    def test_simulate_prints_kpis(self, capsys):
        code = main(
            [
                "simulate",
                "--databases",
                "40",
                "--eval-days",
                "1",
                "--policy",
                "reactive",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "QoS % (logins served)" in out
        assert "reactive" in out

    def test_simulate_with_knobs(self, capsys):
        code = main(
            [
                "simulate",
                "--databases",
                "40",
                "--eval-days",
                "1",
                "--confidence",
                "0.5",
                "--window-hours",
                "2",
            ]
        )
        assert code == 0
        assert "proactive" in capsys.readouterr().out

    def test_figures_fig3(self, capsys):
        code = main(["figures", "--which", "fig3", "--databases", "60"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 3" in out

    def test_figures_fig9(self, capsys):
        code = main(
            ["figures", "--which", "fig9", "--databases", "40", "--eval-days", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 9" in out

    def test_tune(self, capsys):
        code = main(["tune", "--databases", "40", "--eval-days", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "selected: window" in out

    def test_chaos_sweep_with_monotonic_check(self, capsys):
        code = main(
            [
                "chaos",
                "--databases", "60",
                "--eval-days", "1",
                "--fault-rates", "0.0", "0.3",
                "--check-monotonic",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fault rate" in out
        assert "OK: QoS non-increasing" in out

    def test_chaos_plan_file(self, capsys, tmp_path):
        from repro.faults import FaultPlan

        plan_path = tmp_path / "plan.json"
        FaultPlan.uniform(
            ["predictor.exception", "sql.execute"], probability=0.05
        ).save(plan_path)
        code = main(
            [
                "chaos",
                "--databases", "40",
                "--eval-days", "1",
                "--plan", str(plan_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "plan" in out

    def test_chaos_plan_rejects_monotonic_check(self, capsys, tmp_path):
        from repro.faults import FaultPlan

        plan_path = tmp_path / "plan.json"
        FaultPlan.empty().save(plan_path)
        code = main(
            [
                "chaos",
                "--databases", "40",
                "--eval-days", "1",
                "--plan", str(plan_path),
                "--check-monotonic",
            ]
        )
        assert code == 2


class TestServe:
    def test_serve_once_round_trip(self, capsys):
        """serve --once: start the gateway in-process, serve a scripted
        request set (predicts, an expired deadline, a resume scan, a
        health probe), and shut down cleanly."""
        import json

        code = main(["serve", "--once", "--databases", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "shut down cleanly" in out
        lines = [l for l in out.splitlines() if l.startswith("{")]
        docs = [json.loads(l) for l in lines]
        kinds = [d["type"] for d in docs]
        assert "predict" in kinds
        assert "deadline_expired" in kinds
        assert "resume_scan" in kinds
        assert "health" in kinds

    def test_serve_loadgen(self, capsys):
        code = main(
            [
                "serve",
                "--loadgen", "2",
                "--requests-per-client", "3",
                "--databases", "20",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "shut down cleanly" in out
        assert "throughput_rps" in out


def test_digest_command(capsys):
    code = main(["digest", "--databases", "40", "--eval-days", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Proactive breakdown" in out
    assert "provisioned" in out
