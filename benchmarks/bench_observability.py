"""Observability benchmark: what watching the system costs.

Three sections, all written to ``BENCH_observability.json`` (full) or
``BENCH_observability_quick.json`` (``--quick``, the CI baseline):

* **noop**: disabled instrumentation must stay under 2% of a reference
  prediction.  The guard sites on the hot path are counted by running one
  prediction with metrics enabled (every counter on the path increments
  once per guard evaluation), the per-guard cost is measured with a tight
  loop, and the product is compared against the measured prediction time.
* **slo**: live SLO monitoring must stay under 3% of an instrumented
  simulation.  The same region run is timed with metrics only (the
  windowed KPI streams are part of the metrics layer) and again with the
  stock :func:`~repro.observability.slo.simulation_slos` rule set armed;
  the gate is on the armed/disarmed ratio, min-of-reps on both sides.
  The armed run must also reconcile: summed windowed series equal to the
  simulator's ``KpiReport`` (streaming == batch).
* **alert_roundtrip**: the chaos scenario of
  :func:`repro.experiments.chaos.run_slo_chaos` -- a scheduled predictor
  outage and latency spike must fire and clear the stock alerts, and the
  streaming totals must match the offline telemetry recomputation.

Run directly::

    PYTHONPATH=src python benchmarks/bench_observability.py          # full
    PYTHONPATH=src python benchmarks/bench_observability.py --quick  # CI
    PYTHONPATH=src python benchmarks/bench_observability.py --quick --out /tmp/fresh.json

or through pytest (quick scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_observability.py -q
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import List

from repro.config import DEFAULT_CONFIG, ProRPConfig
from repro.core.policy import PolicyKind
from repro.core.predictor import predict_next_activity
from repro.experiments.chaos import run_slo_chaos
from repro.experiments.common import ExperimentScale, region_fleet
from repro.observability import (
    NULL_TRACER,
    OBS,
    AlertLedger,
    MetricsRegistry,
    SloMonitor,
    observed,
    simulation_slos,
)
from repro.simulation.region import simulate_region
from repro.storage.history import HistoryStore
from repro.types import SECONDS_PER_DAY, SECONDS_PER_HOUR, EventType
from repro.workload.regions import RegionPreset

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR

RESULTS_DIR = Path(__file__).resolve().parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_observability.json"
QUICK_BASELINE_PATH = RESULTS_DIR / "BENCH_observability_quick.json"

#: Committed acceptance limits, stored next to the measurements so the
#: regression gate reads both from the same document.
NOOP_OVERHEAD_LIMIT = 0.02
SLO_OVERHEAD_LIMIT = 0.03

REGION = RegionPreset.EU1
#: Timing scale: big enough that the per-boundary SLO evaluation cost
#: (fixed in sim-time, independent of fleet size) is measured against a
#: representative run, not a toy one.
SLO_SCALE = ExperimentScale(n_databases=200, eval_days=1)
#: Chaos-scenario scale: the scheduled outage drives the slow reference
#: predictor, so the roundtrip stays on a small fleet.
CHAOS_SCALE = ExperimentScale(n_databases=60, eval_days=1)


# -- noop: the disabled-path guard --------------------------------------


def _daily_history(days: int = 28, logins_per_day: int = 6) -> HistoryStore:
    store = HistoryStore()
    for day in range(days):
        for k in range(logins_per_day):
            store.insert_history(
                day * DAY + 9 * HOUR + k * 45 * 60, EventType.ACTIVITY_START
            )
    return store


def _timed_loop(fn, reps: int) -> float:
    start = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - start) / reps


def _guard_cost_s(reps: int = 1_000_000) -> float:
    """Per-evaluation cost of the disabled-path guard (``if OBS.enabled``).

    Measured as the delta between a loop over the guard and the same empty
    loop, so the loop machinery (which the real call sites do not add) is
    excluded.  The guard itself is what the instrumented hot paths pay when
    observability is off: a global load, an attribute load, and a branch.
    """
    assert not OBS.enabled
    hits = 0
    start = time.perf_counter()
    for _ in range(reps):
        if OBS.enabled:
            hits += 1  # pragma: no cover - observability is off
    guarded = time.perf_counter() - start
    assert hits == 0
    start = time.perf_counter()
    for _ in range(reps):
        pass
    empty = time.perf_counter() - start
    return max(0.0, guarded - empty) / reps


def _noop_section(reps: int = 50) -> dict:
    config = ProRPConfig()
    store = _daily_history()
    now = 28 * DAY

    assert not OBS.enabled  # the repo-wide default
    disabled_s = _timed_loop(
        lambda: predict_next_activity(store, config, now), reps
    )

    with observed(tracer=NULL_TRACER):
        enabled_s = _timed_loop(
            lambda: predict_next_activity(store, config, now), reps
        )
        registry = OBS.metrics
        # Guard evaluations per prediction: each of these counters sits
        # behind exactly one `if OBS.enabled` check that fired once per
        # unit increment.
        guard_evals = (
            registry.counter("predictor.reference.calls").value
            + registry.counter("history.range_queries").value
            + registry.counter("btree.range_scans").value
        ) / reps
        latency = registry.histogram("predictor.reference.latency_ms").snapshot()

    guard_s = _guard_cost_s()
    overhead_fraction = guard_evals * guard_s / disabled_s
    return {
        "reps": reps,
        "disabled_us_per_prediction": round(disabled_s * 1e6, 3),
        "enabled_metrics_us_per_prediction": round(enabled_s * 1e6, 3),
        "guard_evals_per_prediction": round(guard_evals, 1),
        "guard_cost_ns": round(guard_s * 1e9, 3),
        "noop_overhead_fraction": round(overhead_fraction, 6),
        "noop_overhead_limit": NOOP_OVERHEAD_LIMIT,
        "predictor_reference_latency_ms": latency,
    }


# -- slo: the armed monitoring layer ------------------------------------


def _slo_section(reps: int) -> dict:
    traces = region_fleet(REGION, SLO_SCALE)
    settings = SLO_SCALE.settings(
        region_label=REGION.value, slo_window_s=900
    )
    labels = {"region": REGION.value}

    def run_disarmed() -> float:
        registry = MetricsRegistry()
        start = time.perf_counter()
        with observed(tracer=NULL_TRACER, metrics=registry):
            simulate_region(
                traces, PolicyKind.PROACTIVE, DEFAULT_CONFIG, settings
            )
        return time.perf_counter() - start

    def run_armed():
        registry = MetricsRegistry()
        monitor = SloMonitor(
            registry, simulation_slos(labels=labels), ledger=AlertLedger()
        )
        start = time.perf_counter()
        with observed(tracer=NULL_TRACER, metrics=registry, slo=monitor):
            result = simulate_region(
                traces, PolicyKind.PROACTIVE, DEFAULT_CONFIG, settings
            )
            monitor.drain(settings.eval_end)
        return time.perf_counter() - start, registry, result

    # Warm both paths once (predictor caches, lazy imports) untimed.
    run_disarmed()
    armed_times: List[float] = []
    disarmed_times: List[float] = []
    registry = result = None
    for _ in range(reps):
        disarmed_times.append(run_disarmed())
        armed_s, registry, result = run_armed()
        armed_times.append(armed_s)

    disarmed_s = min(disarmed_times)
    armed_s = min(armed_times)
    overhead = armed_s / disarmed_s - 1.0 if disarmed_s > 0 else 0.0

    kpis = result.kpis()

    def total(name: str) -> float:
        series = registry.get(name, labels)
        return series.total() if series is not None else 0.0

    equivalence_ok = (
        total("slo.qos.logins") == kpis.logins.total
        and total("slo.qos.reactive") == kpis.logins.reactive
        and total("slo.workflows.proactive_resume")
        == kpis.workflows.proactive_resumes
        and round(total("slo.cogs.used_s"), 6) == kpis.used_s
        and round(total("slo.cogs.unavailable_s"), 6) == kpis.unavailable_s
    )
    return {
        "reps": reps,
        "n_databases": SLO_SCALE.n_databases,
        "eval_days": SLO_SCALE.eval_days,
        "disarmed_s": round(disarmed_s, 4),
        "armed_s": round(armed_s, 4),
        "slo_overhead_fraction": round(max(0.0, overhead), 6),
        "slo_overhead_limit": SLO_OVERHEAD_LIMIT,
        "slo_evaluations": registry.counter("slo.evaluations").value,
        "equivalence_ok": 1 if equivalence_ok else 0,
    }


# -- alert_roundtrip: the chaos scenario --------------------------------


def _alert_roundtrip_section() -> dict:
    result = run_slo_chaos(scale=CHAOS_SCALE, preset=REGION)
    return {
        "n_databases": CHAOS_SCALE.n_databases,
        "unavailable_fired_at": result.unavailable_fired_at,
        "unavailable_cleared_at": result.unavailable_cleared_at,
        "latency_fired_at": result.latency_fired_at,
        "latency_cleared_at": result.latency_cleared_at,
        "alert_events": len(result.alert_events),
        "roundtrip_ok": 1 if result.alert_roundtrip_ok else 0,
        "equivalence_ok": 1 if result.equivalence_ok else 0,
        "ok": 1 if result.ok else 0,
    }


# -- harness ------------------------------------------------------------


def run_bench(quick: bool = False) -> dict:
    return {
        "quick": quick,
        "noop": _noop_section(reps=50),
        "slo": _slo_section(reps=2 if quick else 5),
        "alert_roundtrip": _alert_roundtrip_section(),
    }


def _check(result: dict) -> None:
    noop = result["noop"]
    assert noop["noop_overhead_fraction"] < noop["noop_overhead_limit"], (
        f"disabled observability costs {noop['noop_overhead_fraction']:.2%} "
        f"of a reference prediction (limit {noop['noop_overhead_limit']:.0%})"
    )
    slo = result["slo"]
    assert slo["equivalence_ok"], (
        "streaming KPI series diverged from the simulator's KpiReport"
    )
    assert slo["slo_evaluations"] > 0, "the SLO monitor never evaluated"
    roundtrip = result["alert_roundtrip"]
    assert roundtrip["ok"], (
        "the SLO chaos scenario did not round-trip (alerts or equivalence)"
    )
    if not result["quick"]:
        # Wall-clock ratio asserted only on the full (local) run; CI
        # gates it through check_regression.py against the quick baseline
        # where the shared-runner noise is tolerated explicitly.
        assert slo["slo_overhead_fraction"] < slo["slo_overhead_limit"], (
            f"armed SLO monitoring costs {slo['slo_overhead_fraction']:.2%} "
            f"over the metrics-only run (limit {slo['slo_overhead_limit']:.0%})"
        )


def _report(result: dict) -> str:
    noop, slo, rt = result["noop"], result["slo"], result["alert_roundtrip"]
    return "\n".join(
        [
            "Observability overhead"
            + (" (quick)" if result["quick"] else ""),
            f"  noop guard: {noop['guard_cost_ns']} ns/eval x "
            f"{noop['guard_evals_per_prediction']} evals = "
            f"{noop['noop_overhead_fraction']:.3%} of a prediction "
            f"(limit {noop['noop_overhead_limit']:.0%})",
            f"  slo armed vs disarmed at {slo['n_databases']} dbs: "
            f"{slo['armed_s']}s vs {slo['disarmed_s']}s "
            f"(+{slo['slo_overhead_fraction']:.3%}, limit "
            f"{slo['slo_overhead_limit']:.0%}), "
            f"{slo['slo_evaluations']} evaluations, "
            f"streaming==batch: {bool(slo['equivalence_ok'])}",
            f"  alert roundtrip: fired at {rt['unavailable_fired_at']}, "
            f"cleared at {rt['unavailable_cleared_at']}, "
            f"latency p99 fired at {rt['latency_fired_at']}, "
            f"{rt['alert_events']} ledger events, ok: {bool(rt['ok'])}",
        ]
    )


def bench_observability(record_table) -> None:
    """Pytest entry: quick scale, deterministic assertions only."""
    result = run_bench(quick=True)
    record_table("observability", _report(result))
    _check(result)


def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    if "--out" in argv:
        out = Path(argv[argv.index("--out") + 1])
    else:
        out = QUICK_BASELINE_PATH if quick else BASELINE_PATH
    result = run_bench(quick=quick)
    print(_report(result))
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    _check(result)
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
