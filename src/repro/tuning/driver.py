"""The windowed online-tuning driver: live KPI feedback -> tuner decisions.

Splits the evaluation horizon into aligned windows (a day by default).
In every window each surviving candidate config is evaluated on the lean
fleet engine, the scores feed :class:`OnlineKnobTuner.record_window`
(journaled, hysteresis, halving, guarded baseline), and the *online*
series -- the active config, routed through the
:class:`~repro.tuning.bank.PredictorBank` when policies are enabled --
accumulates alongside a *static* series that pins the paper's monthly-
sweep behaviour: the baseline config, unchanged, window after window.

Candidate evaluations fan out over :mod:`repro.parallel` executors; the
per-window task is a module-level function over picklable inputs
(fleet spec or slice, config, window bounds), so the multiprocess
backend reproduces the serial scores byte-for-byte.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config import DEFAULT_CONFIG, ProRPConfig
from repro.core.kpi import KpiReport
from repro.errors import TuningError
from repro.observability.runtime import OBS
from repro.parallel import SweepExecutor, resolve_executor
from repro.simulation.fleet import merge_kpi_reports, simulate_fleet
from repro.simulation.region import SimulationSettings
from repro.training.objective import Objective, qos_priority_objective
from repro.tuning.bank import PredictorBank
from repro.tuning.controller import (
    OnlineKnobTuner,
    TunerSettings,
    TuningDecision,
)
from repro.types import SECONDS_PER_DAY
from repro.workload.fleetgen import DriftSpec, FleetShardSpec, FleetSlice

FleetInput = Union[FleetShardSpec, DriftSpec, FleetSlice]


def _merge_window_kpis(reports: Sequence[KpiReport]) -> KpiReport:
    """Concatenate per-window KPI reports of one fleet in time.

    ``merge_kpi_reports`` merges *shards* of one window (and refuses
    mismatched windows); here every report covers the same databases over
    consecutive equal-length windows, so the counters still sum field-wise
    and only the evaluation span stretches.  ``fleet_seconds`` (the
    percentage denominator) comes out right because the windows tile the
    span: n x (W * window_s).
    """
    head = reports[0]
    span = head.eval_end - head.eval_start
    aligned = [
        dataclasses.replace(r, eval_start=head.eval_start, eval_end=head.eval_end)
        for r in reports
    ]
    merged = merge_kpi_reports(aligned)
    return dataclasses.replace(
        merged,
        n_databases=head.n_databases,
        eval_start=head.eval_start,
        eval_end=head.eval_start + span * len(reports),
    )


def _window_eval_task(context, item) -> KpiReport:
    """Evaluate one (config, window) cell on the lean fleet engine.

    Module-level so the multiprocess backend pickles it by reference;
    the fleet spec in the context re-materialises deterministically in
    every worker.
    """
    fleet, settings, online_warmup_s = context
    config, eval_start, eval_end, bank = item
    window_settings = dataclasses.replace(
        settings,
        eval_start=eval_start,
        eval_end=eval_end,
        predictor_bank=tuple(bank),
        # Bank runs may warm up longer: the regret scorer needs a few
        # observed logins before hysteresis lets a policy switch.
        warmup_s=(
            online_warmup_s
            if bank and online_warmup_s is not None
            else settings.warmup_s
        ),
    )
    result = simulate_fleet(
        fleet, "proactive", config=config, settings=window_settings
    )
    return result.kpis


@dataclass(frozen=True)
class WindowOutcome:
    """One evaluated window: candidate scores and the tuner's reaction."""

    window: int
    eval_start: int
    eval_end: int
    #: (candidate index, objective score) for every alive candidate.
    scores: Tuple[Tuple[int, float], ...]
    decision: TuningDecision
    online_score: float
    static_score: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "window": self.window,
            "eval_start": self.eval_start,
            "eval_end": self.eval_end,
            "scores": [[i, s] for i, s in self.scores],
            "decision": self.decision.to_dict(),
            "online_score": self.online_score,
            "static_score": self.static_score,
        }


@dataclass(frozen=True)
class OnlineTuningReport:
    """Cumulative outcome of an online-tuning run."""

    candidates: Tuple[ProRPConfig, ...]
    policies: Tuple[str, ...]
    windows: Tuple[WindowOutcome, ...]
    online_kpis: KpiReport
    static_kpis: KpiReport
    online_score: float
    static_score: float

    @property
    def decisions(self) -> Tuple[TuningDecision, ...]:
        return tuple(w.decision for w in self.windows)

    @property
    def promotions(self) -> int:
        return sum(1 for w in self.windows if w.decision.promoted is not None)

    @property
    def demotions(self) -> int:
        return sum(1 for w in self.windows if w.decision.demoted)

    @property
    def dominates_static(self) -> bool:
        """The acceptance gate: online never loses to the static sweep."""
        return self.online_score >= self.static_score

    def to_dict(self) -> Dict[str, object]:
        return {
            "candidates": [c.to_dict() for c in self.candidates],
            "policies": list(self.policies),
            "windows": [w.to_dict() for w in self.windows],
            "online_score": self.online_score,
            "static_score": self.static_score,
            "online_qos_percent": self.online_kpis.qos_percent,
            "static_qos_percent": self.static_kpis.qos_percent,
            "online_idle_percent": self.online_kpis.idle_percent,
            "static_idle_percent": self.static_kpis.idle_percent,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "dominates_static": self.dominates_static,
        }


def run_online_tuning(
    fleet: FleetInput,
    baseline: ProRPConfig = DEFAULT_CONFIG,
    challengers: Sequence[ProRPConfig] = (),
    *,
    n_windows: int,
    window_s: int = SECONDS_PER_DAY,
    settings: Optional[SimulationSettings] = None,
    policies: Sequence[str] = (),
    online_warmup_s: Optional[int] = None,
    state_dir: Optional[Union[str, Path]] = None,
    tuner: Optional[OnlineKnobTuner] = None,
    tuner_settings: Optional[TunerSettings] = None,
    objective: Optional[Objective] = None,
    executor: Optional[SweepExecutor] = None,
    workers: Optional[int] = None,
) -> OnlineTuningReport:
    """Drive the tuner + bank over ``n_windows`` aligned windows.

    ``settings.eval_start`` anchors window 0; each window evaluates
    ``[eval_start + w*window_s, eval_start + (w+1)*window_s)`` with the
    template's warmup.  Pass a recovered ``tuner`` to resume after a
    crash: windows it already journaled are skipped and the run
    continues from ``tuner.expected_window`` (the report then covers the
    resumed windows only).
    """
    if n_windows < 1:
        raise TuningError(f"n_windows must be >= 1, got {n_windows}")
    if window_s < 1:
        raise TuningError(f"window_s must be >= 1, got {window_s}")
    if tuner is None:
        tuner = OnlineKnobTuner(
            baseline, challengers, state_dir=state_dir, settings=tuner_settings
        )
    elif tuner.candidates != (baseline,) + tuple(challengers):
        raise TuningError(
            "the resumed tuner's candidate population does not match the "
            "(baseline, challengers) this driver was given"
        )
    policies = tuple(policies)
    if policies:
        PredictorBank(policies, baseline)  # validate names eagerly
    if settings is None:
        settings = SimulationSettings(
            eval_start=SECONDS_PER_DAY, eval_end=2 * SECONDS_PER_DAY
        )
    objective = objective or qos_priority_objective()
    backend = resolve_executor(executor, workers)
    t0 = settings.eval_start

    windows: List[WindowOutcome] = []
    online_kpis: List[KpiReport] = []
    static_kpis: List[KpiReport] = []
    first = tuner.expected_window
    if first >= n_windows:
        raise TuningError(
            f"nothing to do: the tuner already recorded {first} windows "
            f"and the run asks for {n_windows}"
        )
    for w in range(first, n_windows):
        ws, we = t0 + w * window_s, t0 + (w + 1) * window_s
        alive = tuner.alive_indices
        active = tuner.active_index
        items: List[Tuple[ProRPConfig, int, int, Tuple[str, ...]]] = [
            (tuner.candidates[i], ws, we, ()) for i in alive
        ]
        # The online production series routes through the bank; without
        # policies it *is* the active candidate's evaluation run.
        online_item = None
        if policies:
            online_item = len(items)
            items.append((tuner.candidates[active], ws, we, policies))
        reports = backend.run(
            _window_eval_task, (fleet, settings, online_warmup_s), items
        )
        scores = {i: objective(reports[k]) for k, i in enumerate(alive)}
        online_report = (
            reports[online_item]
            if online_item is not None
            else reports[list(alive).index(active)]
        )
        static_report = reports[list(alive).index(0)]
        online_kpis.append(online_report)
        static_kpis.append(static_report)
        online_score = objective(online_report)
        static_score = objective(static_report)
        decision = tuner.record_window(scores, now=ws)
        if OBS.enabled:
            OBS.metrics.gauge("tuning.online_score").set(online_score)
            OBS.metrics.gauge("tuning.static_score").set(static_score)
        windows.append(
            WindowOutcome(
                window=w,
                eval_start=ws,
                eval_end=we,
                scores=tuple(sorted(scores.items())),
                decision=decision,
                online_score=online_score,
                static_score=static_score,
            )
        )
    if state_dir is not None or tuner._state_dir is not None:
        tuner.checkpoint()

    merged_online = _merge_window_kpis(online_kpis)
    merged_static = _merge_window_kpis(static_kpis)
    return OnlineTuningReport(
        candidates=tuner.candidates,
        policies=policies,
        windows=tuple(windows),
        online_kpis=merged_online,
        static_kpis=merged_static,
        online_score=objective(merged_online),
        static_score=objective(merged_static),
    )
