"""Figure 3 bench: idle-time fragmentation CDFs.

Paper shape: ~72% of idle intervals are within one hour (3a) while
contributing only ~5% of the total idle duration (3b).
"""

from repro.experiments.common import BENCH_SCALE
from repro.experiments.fig3 import run_fig3


def bench_fig3_idle_fragmentation(benchmark, record_table):
    result = benchmark.pedantic(
        run_fig3, args=(BENCH_SCALE,), rounds=1, iterations=1
    )
    record_table("fig03_idle_fragmentation", result.table())
    # Shape assertions (absolute values recorded in EXPERIMENTS.md).
    assert result.short_interval_count_percent > 50
    assert result.short_interval_duration_percent < 10
