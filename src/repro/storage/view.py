"""The customer-facing materialized view over the history store.

Section 5: "We will publish a materialized view over this history to the
customers.  To this end, we convert both columns to human-readable format,
i.e., epoch time is converted to date time, while event type is converted
to string.  The customers will have read access to this table but no write
access to prevent modification of the history."
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import StorageError
from repro.storage.history import HistoryStore
from repro.types import EventType

#: Human-readable labels for the ``event_type`` column.
EVENT_LABELS = {
    int(EventType.ACTIVITY_START): "activity start",
    int(EventType.ACTIVITY_END): "activity end",
}


@dataclass(frozen=True)
class CustomerHistoryRow:
    """One row of the customer view."""

    time_utc: str
    event: str


class CustomerHistoryView:
    """Read-only, human-readable projection of ``sys.pause_resume_history``.

    The view is *materialized on read*: it always reflects the current
    table contents (after trims by Algorithm 3) and offers no mutation
    surface at all -- every write-shaped method raises.
    """

    def __init__(self, store: HistoryStore):
        self._store = store

    # ------------------------------------------------------------------
    # Read surface
    # ------------------------------------------------------------------

    @staticmethod
    def _format_time(epoch: int) -> str:
        return datetime.datetime.fromtimestamp(
            epoch, tz=datetime.timezone.utc
        ).strftime("%Y-%m-%d %H:%M:%S")

    def rows(
        self, start: Optional[int] = None, end: Optional[int] = None
    ) -> List[CustomerHistoryRow]:
        """All rows in time order, optionally restricted to [start, end]."""
        if start is None and end is None:
            events = self._store.all_events()
        else:
            lo = start if start is not None else 0
            hi = end if end is not None else (self._store.max_timestamp() or 0)
            events = self._store.events_in_range(lo, hi)
        return [
            CustomerHistoryRow(
                time_utc=self._format_time(event.time_snapshot),
                event=EVENT_LABELS[int(event.event_type)],
            )
            for event in events
        ]

    def __iter__(self) -> Iterator[CustomerHistoryRow]:
        return iter(self.rows())

    def __len__(self) -> int:
        return self._store.tuple_count

    # ------------------------------------------------------------------
    # Write surface: none, by design
    # ------------------------------------------------------------------

    def insert(self, *args, **kwargs) -> None:
        raise StorageError("the customer history view is read-only")

    def delete(self, *args, **kwargs) -> None:
        raise StorageError("the customer history view is read-only")

    def update(self, *args, **kwargs) -> None:
        raise StorageError("the customer history view is read-only")
