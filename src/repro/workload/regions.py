"""Region presets standing in for the paper's EU1 / EU2 / US1 / US2.

The paper validates its KPIs across the two largest European and the two
largest US Azure regions (Figure 6).  Our presets differ in archetype
mixture, business-hour placement (time zones), and churn, so the
cross-region validation exercises genuinely different fleets rather than
four seeds of the same distribution.
"""

from __future__ import annotations

import enum
from typing import List

from repro.types import ActivityTrace
from repro.workload.archetypes import (
    BurstyDev,
    DailyBusinessHours,
    Dormant,
    NightlyJob,
    Sporadic,
    Stable,
    WeeklyBatch,
)
from repro.workload.generator import FleetSpec, generate_fleet


class RegionPreset(enum.Enum):
    EU1 = "EU1"
    EU2 = "EU2"
    US1 = "US1"
    US2 = "US2"


def _business_fleet(
    workday_center_h: float,
    daily_weight: float,
    sporadic_weight: float,
    dormant_weight: float,
    nightly_weight: float,
    new_fraction: float,
) -> FleetSpec:
    fixed = 0.04 + 0.05 + 0.002  # weekly + stable + chatty
    bursty = max(
        0.0,
        1.0 - daily_weight - sporadic_weight - dormant_weight - nightly_weight - fixed,
    )
    return FleetSpec(
        mixture=(
            ("sporadic", sporadic_weight, lambda r: Sporadic(
                days_between_sessions=r.uniform(3.0, 9.0),
                session_minutes=r.uniform(20, 90),
                sessions_per_episode=3,
            )),
            ("dormant", dormant_weight, lambda r: Dormant(
                days_between_sessions=r.uniform(8.0, 21.0),
                session_minutes=r.uniform(10, 60),
            )),
            ("bursty_dev", bursty, lambda r: BurstyDev(
                days_between_episodes=r.uniform(1.5, 4.0),
                sessions_per_episode=4,
                preferred_hour=(workday_center_h + r.uniform(-6.0, 6.0)) % 24,
                session_minutes=r.uniform(20, 60),
            )),
            ("daily", daily_weight, lambda r: DailyBusinessHours(
                workday_start_h=workday_center_h - 4 + r.uniform(-0.8, 0.8),
                workday_end_h=workday_center_h + 4 + r.uniform(-1.0, 1.5),
                breaks_per_day=r.uniform(4.0, 7.0),
                start_jitter_min=r.uniform(30.0, 60.0),
                weekdays_only=r.random() < 0.45,
            )),
            ("nightly", nightly_weight, lambda r: NightlyJob(
                job_hour=(workday_center_h + 12 + r.uniform(-2, 3)) % 24,
                duration_min=r.uniform(20, 90),
            )),
            # A small population of chatty always-on-ish apps whose
            # connection pools flap all day: they carry the >4K-tuple tail
            # of Figure 10(a) and many of the sub-hour gaps of Figure 3(a).
            ("chatty", 0.002, lambda r: DailyBusinessHours(
                workday_start_h=7.0 + r.uniform(-1, 1),
                workday_end_h=22.0 + r.uniform(-1, 1),
                breaks_per_day=r.uniform(30, 80),
                break_minutes=r.uniform(3, 8),
                weekdays_only=False,
                skip_day_probability=0.0,
            )),
            ("weekly", 0.04, lambda r: WeeklyBatch(
                weekday=r.randrange(7),
                start_hour=r.uniform(1.0, 22.0),
                duration_h=r.uniform(1.0, 5.0),
            )),
            ("stable", 0.05, lambda r: Stable()),
        ),
        new_database_fraction=new_fraction,
    )


_PRESETS = {
    # Large enterprise-heavy European region: strong daily patterns.
    RegionPreset.EU1: _business_fleet(
        workday_center_h=13.0,
        daily_weight=0.22,
        sporadic_weight=0.27,
        dormant_weight=0.22,
        nightly_weight=0.08,
        new_fraction=0.05,
    ),
    # Second European region: smaller daily share, more dev/test churn.
    RegionPreset.EU2: _business_fleet(
        workday_center_h=12.0,
        daily_weight=0.17,
        sporadic_weight=0.30,
        dormant_weight=0.26,
        nightly_weight=0.06,
        new_fraction=0.08,
    ),
    # US regions: business hours shifted by ~7-9 hours, more nightly ETL.
    RegionPreset.US1: _business_fleet(
        workday_center_h=20.0,
        daily_weight=0.20,
        sporadic_weight=0.28,
        dormant_weight=0.24,
        nightly_weight=0.10,
        new_fraction=0.05,
    ),
    RegionPreset.US2: _business_fleet(
        workday_center_h=21.0,
        daily_weight=0.18,
        sporadic_weight=0.26,
        dormant_weight=0.25,
        nightly_weight=0.11,
        new_fraction=0.07,
    ),
}


def region_spec(preset: RegionPreset) -> FleetSpec:
    """The fleet specification of one region preset."""
    return _PRESETS[preset]


def generate_region_traces(
    preset: RegionPreset,
    n_databases: int,
    span_days: int = 35,
    seed: int = 0,
) -> List[ActivityTrace]:
    """Generate a region fleet.  The default 35-day span leaves the default
    28-day history plus a week of warm-up/evaluation room."""
    return generate_fleet(
        region_spec(preset),
        n_databases=n_databases,
        span_days=span_days,
        seed=f"{seed}:{preset.value}",
        id_prefix=preset.value.lower(),
    )
