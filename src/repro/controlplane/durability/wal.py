"""Segmented, checksummed write-ahead log for the control plane.

Every workflow state transition is appended here *before* the in-memory
engine applies it (journal-before-apply), so a control-plane crash loses
at most the transition whose append was interrupted -- and that
transition, having never been applied, is simply re-decided after
recovery.

Record layout (little-endian), one record after another inside a segment
file::

    +--------+----------------+---------------+-----------------+
    | magic  | payload length | crc32(payload)| payload (JSON)  |
    | 4 B    | u32            | u32           | length bytes    |
    +--------+----------------+---------------+-----------------+

The payload is canonical JSON (sorted keys, compact separators) so a
record's bytes are a pure function of its document.  Segments are named
``wal-<seq:08d>.seg`` and rotate once they exceed ``segment_max_bytes``;
rotation closes (and fsyncs) the old segment, so only the last segment
can ever hold a torn tail.

Replay walks the segments in order and verifies every record.  A record
that fails verification in the *last* segment is a torn tail -- the
classic crash-mid-append artifact -- and is truncated away together with
anything after it; the journaled-but-unapplied transition it held never
happened, which is exactly the crash semantics the engine recovers under.
A bad record in any *earlier* segment cannot be explained by a crash
(rotation fsyncs) and raises :class:`~repro.errors.WalCorruptionError`.

Fault points (armed via ``repro.faults``; the ``controlplane.wal.*``
family, consulted with the engine's sim-time ``now`` so plans can window
them mid-day):

* ``controlplane.wal.crash`` -- the control plane dies *before* the
  record reaches the log: nothing is written, the append raises
  :class:`~repro.errors.ControlPlaneCrashError`.
* ``controlplane.wal.torn`` -- the process dies mid-write: a prefix of
  the record lands on disk, then the crash error is raised.  Recovery
  must truncate the partial record.
* ``controlplane.wal.corrupt`` -- the record is written full-length but
  with one payload byte flipped (a medium error at crash time), then the
  crash error is raised.  Recovery must detect the checksum mismatch and
  truncate the tail.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ControlPlaneCrashError, WalCorruptionError, WalError
from repro.faults.runtime import FAULTS
from repro.observability.runtime import OBS

#: Per-record magic; also the format version tag (bump on layout change).
RECORD_MAGIC = b"PRW1"

#: ``magic + length + crc32`` -- the fixed record header.
HEADER = struct.Struct("<4sII")

#: Fault point: the control plane dies before the append writes anything.
CRASH_FAULT_POINT = "controlplane.wal.crash"

#: Fault point: the append writes a torn (partial) record, then dies.
TORN_FAULT_POINT = "controlplane.wal.torn"

#: Fault point: the append writes a corrupted tail record, then dies.
CORRUPT_FAULT_POINT = "controlplane.wal.corrupt"

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"


def encode_record(document: Dict[str, object]) -> bytes:
    """One record's bytes: fixed header plus canonical-JSON payload."""
    payload = json.dumps(
        document, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return HEADER.pack(RECORD_MAGIC, len(payload), zlib.crc32(payload)) + payload


def _segment_path(directory: Path, seq: int) -> Path:
    return directory / f"{_SEGMENT_PREFIX}{seq:08d}{_SEGMENT_SUFFIX}"


def segment_paths(directory: Union[str, Path]) -> List[Path]:
    """Existing segment files in log order."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        p
        for p in directory.iterdir()
        if p.name.startswith(_SEGMENT_PREFIX)
        and p.name.endswith(_SEGMENT_SUFFIX)
    )


def _scan_segment(raw: bytes) -> Tuple[List[Dict[str, object]], int]:
    """Parse one segment's bytes; returns ``(records, clean_length)``
    where ``clean_length`` is the offset of the first bad/partial record
    (== ``len(raw)`` for a fully clean segment)."""
    records: List[Dict[str, object]] = []
    offset = 0
    while offset < len(raw):
        header = raw[offset : offset + HEADER.size]
        if len(header) < HEADER.size:
            return records, offset
        magic, length, crc = HEADER.unpack(header)
        if magic != RECORD_MAGIC:
            return records, offset
        start = offset + HEADER.size
        payload = raw[start : start + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            return records, offset
        try:
            document = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return records, offset
        if not isinstance(document, dict):
            return records, offset
        records.append(document)
        offset = start + length
    return records, offset


def read_log(
    directory: Union[str, Path], repair: bool = True
) -> Tuple[List[Dict[str, object]], int]:
    """Replay a WAL directory; returns ``(records, truncated_bytes)``.

    With ``repair`` (the recovery path), a torn tail in the last segment
    is truncated in place so subsequent appends extend a clean log; with
    ``repair=False`` the log is only read (tail bytes still excluded from
    the returned records).  Corruption anywhere but the last segment's
    tail raises :class:`WalCorruptionError` -- that is data loss a crash
    cannot explain, and recovering past it would silently drop
    transitions.
    """
    paths = segment_paths(directory)
    records: List[Dict[str, object]] = []
    truncated = 0
    for index, path in enumerate(paths):
        raw = path.read_bytes()
        segment_records, clean_length = _scan_segment(raw)
        if clean_length != len(raw):
            if index != len(paths) - 1:
                raise WalCorruptionError(
                    f"WAL segment {path.name} holds a corrupt record at "
                    f"offset {clean_length} before the log tail: refusing "
                    "to recover past silent data loss"
                )
            truncated = len(raw) - clean_length
            if repair:
                with open(path, "r+b") as handle:
                    handle.truncate(clean_length)
                    handle.flush()
                    os.fsync(handle.fileno())
        records.extend(segment_records)
    return records, truncated


class WriteAheadLog:
    """Append side of the log.  One writer per directory.

    ``fsync`` selects the commit discipline: ``True`` flushes every
    append to stable storage (strict durability, slow), ``False`` leaves
    appends in the OS page cache and fsyncs only on rotation, checkpoint,
    and close (group commit -- the benchmark's armed-overhead mode).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        segment_max_bytes: int = 1 << 20,
        fsync: bool = True,
    ):
        if segment_max_bytes <= 0:
            raise WalError("segment_max_bytes must be positive")
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._segment_max_bytes = segment_max_bytes
        self._fsync = fsync
        self._handle = None
        self._segment_bytes = 0
        self.records_appended = 0
        existing = segment_paths(self._directory)
        if existing:
            # Append after the existing tail (the recovery path has
            # already truncated any torn record via read_log).
            last = existing[-1]
            self._segment_seq = int(
                last.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
            )
            self._handle = open(last, "ab")
            self._segment_bytes = last.stat().st_size
        else:
            self._segment_seq = 0
            self._open_segment()

    # -- lifecycle -----------------------------------------------------

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def segment_count(self) -> int:
        return len(segment_paths(self._directory))

    def _open_segment(self) -> None:
        self._handle = open(_segment_path(self._directory, self._segment_seq), "ab")
        self._segment_bytes = self._handle.tell()

    def _rotate(self) -> None:
        self.sync()
        self._handle.close()
        self._segment_seq += 1
        self._open_segment()
        if OBS.enabled:
            OBS.metrics.gauge("workflow.wal.segments").set(self.segment_count)

    def sync(self) -> None:
        """Flush buffered appends to stable storage."""
        if self._handle is not None and not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self.sync()
            self._handle.close()

    # -- append --------------------------------------------------------

    def append(
        self, document: Dict[str, object], now: Optional[int] = None
    ) -> int:
        """Durably journal one record; returns its size in bytes.

        ``now`` is the engine's sim-time, forwarded to the
        ``controlplane.wal.*`` fault points so chaos plans can schedule a
        crash mid-day.
        """
        if self._handle is None or self._handle.closed:
            raise WalError("append on a closed WriteAheadLog")
        started = time.perf_counter()
        record = encode_record(document)
        if FAULTS.enabled and FAULTS.injector is not None:
            injector = FAULTS.injector
            if injector.should_fire(CRASH_FAULT_POINT, now):
                raise ControlPlaneCrashError(
                    "injected: control plane died before journaling "
                    f"{document.get('type', '?')!r}"
                )
            if injector.should_fire(TORN_FAULT_POINT, now):
                torn = record[: HEADER.size + max(1, (len(record) - HEADER.size) // 2)]
                self._handle.write(torn)
                self.sync()
                raise ControlPlaneCrashError(
                    "injected: control plane died mid-append (torn record)"
                )
            if injector.should_fire(CORRUPT_FAULT_POINT, now):
                corrupt = bytearray(record)
                corrupt[HEADER.size] ^= 0xFF  # flip a payload byte
                self._handle.write(bytes(corrupt))
                self.sync()
                raise ControlPlaneCrashError(
                    "injected: control plane died leaving a corrupt tail"
                )
        self._handle.write(record)
        if self._fsync:
            self.sync()
        self._segment_bytes += len(record)
        self.records_appended += 1
        if OBS.enabled:
            OBS.metrics.counter("workflow.wal.records").inc()
            OBS.metrics.counter("workflow.wal.bytes").inc(len(record))
            OBS.metrics.histogram("workflow.wal.append_ms").observe(
                (time.perf_counter() - started) * 1000.0
            )
        if self._segment_bytes >= self._segment_max_bytes:
            self._rotate()
        return len(record)
