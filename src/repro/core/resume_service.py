"""The proactive resume operation (Section 7, Algorithm 5).

A periodic management-service activity: each iteration scans the metadata
store for physically paused databases whose predicted activity starts during
the k-th minute from now and pre-warms them (transitioning each to a logical
pause so the resources are ready before the customer logs in).

The operation also keeps the per-iteration batch-size log the paper studies
in Figure 11 to tune its frequency (one minute in production, so no
iteration pre-warms more than ~100 databases).

The metadata scan is the operation's infrastructure dependency, and the
fault point ``resume.scan.unavailable`` models it going away.  The scan is
wrapped in a :class:`repro.faults.RetryPolicy` (exponential backoff with
jitter), so a transient outage costs a few retries; only when the retries
are exhausted does the iteration come up empty -- the fleet then falls
back to reactive resumes for that period, exactly the Section 3.2
"Default to Reactive" posture.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol

from repro.errors import FaultInjectedError, ProRPError
from repro.faults.resilience import RetryPolicy
from repro.faults.runtime import FAULTS
from repro.observability.metrics import LATENCY_BUCKETS_MS
from repro.observability.runtime import OBS

#: Fault point consulted once per scan attempt: the metadata store is
#: unavailable and the attempt raises.
SCAN_FAULT_POINT = "resume.scan.unavailable"


class PrewarmSource(Protocol):
    """The metadata scan Algorithm 5 issues (either store backend works)."""

    def databases_to_prewarm(
        self, now: int, prewarm_s: int, period_s: int
    ) -> List[str]: ...


@dataclass
class IterationRecord:
    """One iteration of the proactive resume operation."""

    time: int
    database_ids: List[str]
    #: Scan attempts that failed before this iteration's outcome (0 on the
    #: happy path; == retry budget when the iteration gave up empty).
    scan_failures: int = 0

    @property
    def batch_size(self) -> int:
        return len(self.database_ids)


class ProactiveResumeOperation:
    """Periodic pre-warm of databases ahead of predicted activity."""

    def __init__(
        self,
        metadata: PrewarmSource,
        prewarm_s: int,
        period_s: int,
        on_prewarm: Callable[[str, int], None],
        retry: Optional[RetryPolicy] = None,
        retain_iterations: Optional[int] = None,
    ):
        """``on_prewarm(database_id, now)`` performs the actual allocation
        (Algorithm 5 line 8 calls the database's LogicalPause()).

        ``retain_iterations`` caps the in-memory iteration log on long
        runs: only the most recent N full :class:`IterationRecord`\\ s are
        kept, older ones are rolled into the ``rolled_*`` aggregate
        counters.  None (the default) retains everything.
        """
        if period_s <= 0:
            raise ValueError("the operation period must be positive")
        if retain_iterations is not None and retain_iterations <= 0:
            raise ValueError("retain_iterations must be positive (or None)")
        self._metadata = metadata
        self._prewarm_s = prewarm_s
        self._period_s = period_s
        self._on_prewarm = on_prewarm
        self._retry = retry if retry is not None else RetryPolicy(
            max_attempts=3, base_delay_s=1.0, multiplier=2.0, jitter=0.1
        )
        self._retain_iterations = retain_iterations
        self.iterations: List[IterationRecord] = []
        #: Scan attempts that failed across the whole run (transient).
        self.scan_failures = 0
        #: Iterations abandoned after exhausting the retry budget.
        self.failed_iterations = 0
        #: Aggregates of records dropped by the retention window.
        self.rolled_iterations = 0
        self.rolled_prewarms = 0
        self.rolled_scan_failures = 0

    @property
    def period_s(self) -> int:
        return self._period_s

    def run_once(self, now: int) -> IterationRecord:
        """Execute one iteration at time ``now``: select and pre-warm.

        All wall-clock timing lives strictly inside the ``OBS.enabled``
        branch: the disabled path performs no ``perf_counter`` calls.
        """
        if not OBS.enabled:
            return self._run_once(now)
        started = _time.perf_counter()
        with OBS.tracer.span("resume.scan", t=now) as span:
            record = self._run_once(now)
            span.set_attribute("batch_size", record.batch_size)
        OBS.metrics.histogram(
            "resume.scan.duration_ms", buckets=LATENCY_BUCKETS_MS
        ).observe((_time.perf_counter() - started) * 1000.0)
        OBS.metrics.counter("resume.scan.iterations").inc()
        OBS.metrics.counter("resume.scan.prewarms").inc(record.batch_size)
        return record

    def _scan(self, now: int) -> List[str]:
        """One scan attempt against the metadata store."""
        if FAULTS.enabled and FAULTS.injector.should_fire(SCAN_FAULT_POINT, now):
            raise FaultInjectedError(
                SCAN_FAULT_POINT, "injected: metadata store unavailable"
            )
        return self._metadata.databases_to_prewarm(
            now, self._prewarm_s, self._period_s
        )

    def _on_scan_retry(self, attempt: int, delay_s: float, error: BaseException) -> None:
        self.scan_failures += 1
        if FAULTS.enabled and FAULTS.injector is not None:
            FAULTS.injector.note("retry.resume.scan")
        if OBS.enabled:
            OBS.metrics.counter("resume.scan.retries").inc()

    def _run_once(self, now: int) -> IterationRecord:
        failures_before = self.scan_failures
        try:
            selected = self._retry.call(
                lambda: self._scan(now),
                retry_on=(ProRPError,),
                on_retry=self._on_scan_retry,
            )
        except ProRPError:
            # Retry budget exhausted: no pre-warms this period.  The fleet
            # degrades to reactive resumes until the next iteration.
            self.scan_failures += 1
            self.failed_iterations += 1
            if OBS.enabled:
                OBS.metrics.counter("resume.scan.failed_iterations").inc()
            selected = []
        record = IterationRecord(
            time=now,
            database_ids=list(selected),
            scan_failures=self.scan_failures - failures_before,
        )
        self.iterations.append(record)
        self._roll_up()
        for database_id in selected:
            self._on_prewarm(database_id, now)
        return record

    def _roll_up(self) -> None:
        """Fold records beyond the retention window into aggregates, so
        ``iterations`` stays bounded on long simulations while the recent
        window (the one Figure 11 plots) keeps its full records."""
        if self._retain_iterations is None:
            return
        excess = len(self.iterations) - self._retain_iterations
        if excess <= 0:
            return
        for record in self.iterations[:excess]:
            self.rolled_iterations += 1
            self.rolled_prewarms += record.batch_size
            self.rolled_scan_failures += record.scan_failures
        del self.iterations[:excess]

    @property
    def total_iterations(self) -> int:
        """Iterations executed, including those rolled into aggregates."""
        return self.rolled_iterations + len(self.iterations)

    @property
    def total_prewarms(self) -> int:
        """Databases pre-warmed, including rolled-up iterations."""
        return self.rolled_prewarms + sum(
            record.batch_size for record in self.iterations
        )

    def batch_sizes(self, start: int = 0, end: Optional[int] = None) -> List[int]:
        """Per-iteration batch sizes within [start, end) -- Figure 11's y.

        Only retained records are visible: with ``retain_iterations`` set,
        callers must size the window to cover the span they plot.
        """
        return [
            record.batch_size
            for record in self.iterations
            if record.time >= start and (end is None or record.time < end)
        ]
