"""Statistical helpers for the evaluation figures: empirical CDFs
(Figures 3 and 10), box-plot summaries (Figures 11-12), and ASCII table
rendering for the benchmark harness output."""

from repro.analysis.stats import (
    BoxPlotSummary,
    EmpiricalCdf,
    box_plot_summary,
    percentile,
)
from repro.analysis.tables import format_table

__all__ = [
    "EmpiricalCdf",
    "BoxPlotSummary",
    "box_plot_summary",
    "percentile",
    "format_table",
]
