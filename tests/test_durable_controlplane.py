"""Tests for the durable event-sourced control plane
(``repro/controlplane/durability/``).

The center of gravity is the exactly-once recovery property: crash the
durable engine after *any* WAL record, under any crash flavour (nothing
written / torn record / corrupt tail), and recovery plus a resumed driver
must converge to a final state byte-identical to an uninterrupted run --
no workflow executed twice, none lost.  Around that: the WAL record
format (torn-tail truncation, single-byte corruption detection, segment
rotation), checkpoint fallback, journal-before-apply, and the end-to-end
kill-mid-day chaos scenario.
"""

import json
import random

import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.controlplane import (
    DiagnosticsRunner,
    DurableWorkflowEngine,
    WorkflowKind,
    WorkflowState,
)
from repro.controlplane.durability import (
    CORRUPT_FAULT_POINT,
    CRASH_FAULT_POINT,
    TORN_FAULT_POINT,
    WriteAheadLog,
    checkpoint_paths,
    encode_record,
    load_latest_checkpoint,
    read_log,
    segment_paths,
    terminal_record_counts,
    write_checkpoint,
)
from repro.controlplane.workflows import STUCK_POINT
from repro.errors import ControlPlaneCrashError, WalCorruptionError, WalError
from repro.experiments.crash_recovery import _drive
from repro.faults import FaultPlan, FaultSpec, chaos
from repro.faults.runtime import FAULTS

RECORDS = [
    {"type": "submitted", "wf": 0, "kind": "proactive_resume", "db": "db-0",
     "at": 0, "duration_s": 45, "lsn": 1},
    {"type": "started", "wf": 0, "at": 30, "lsn": 2},
    {"type": "succeeded", "wf": 0, "at": 90, "lsn": 3},
]


def canonical(doc) -> bytes:
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


# ----------------------------------------------------------------------
# WAL format
# ----------------------------------------------------------------------


class TestWriteAheadLog:
    def test_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for record in RECORDS:
            wal.append(record)
        wal.close()
        records, truncated = read_log(tmp_path)
        assert records == RECORDS
        assert truncated == 0

    def test_append_after_reopen_extends_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(RECORDS[0])
        wal.close()
        wal = WriteAheadLog(tmp_path)
        wal.append(RECORDS[1])
        wal.close()
        records, _ = read_log(tmp_path)
        assert records == RECORDS[:2]
        assert len(segment_paths(tmp_path)) == 1

    def test_segment_rotation(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_max_bytes=64)
        for i in range(10):
            wal.append({"type": "submitted", "wf": i, "lsn": i})
        wal.close()
        assert len(segment_paths(tmp_path)) > 2
        records, truncated = read_log(tmp_path)
        assert [r["wf"] for r in records] == list(range(10))
        assert truncated == 0

    def test_torn_tail_truncated_and_repaired(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for record in RECORDS:
            wal.append(record)
        wal.close()
        path = segment_paths(tmp_path)[0]
        raw = path.read_bytes()
        path.write_bytes(raw[:-7])  # tear the last record mid-payload
        records, truncated = read_log(tmp_path, repair=True)
        assert records == RECORDS[:2]
        assert truncated == len(encode_record(RECORDS[2])) - 7
        # The repair truncated the file: a fresh read is clean, and a
        # reopened log appends after the surviving prefix.
        records, truncated = read_log(tmp_path)
        assert records == RECORDS[:2] and truncated == 0
        wal = WriteAheadLog(tmp_path)
        wal.append(RECORDS[2])
        wal.close()
        assert read_log(tmp_path)[0] == RECORDS

    def test_corruption_before_tail_segment_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_max_bytes=1)  # every record rotates
        for record in RECORDS:
            wal.append(record)
        wal.close()
        first = segment_paths(tmp_path)[0]
        raw = bytearray(first.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        first.write_bytes(bytes(raw))
        with pytest.raises(WalCorruptionError):
            read_log(tmp_path)

    def test_append_on_closed_log_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.close()
        with pytest.raises(WalError):
            wal.append(RECORDS[0])

    def test_injected_crash_writes_nothing(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(RECORDS[0])
        plan = FaultPlan.of(FaultSpec(CRASH_FAULT_POINT, probability=1.0))
        with chaos(plan):
            with pytest.raises(ControlPlaneCrashError):
                wal.append(RECORDS[1])
        wal.close()
        assert read_log(tmp_path) == ([RECORDS[0]], 0)

    @pytest.mark.parametrize("point", [TORN_FAULT_POINT, CORRUPT_FAULT_POINT])
    def test_injected_torn_and_corrupt_tails_truncate(self, tmp_path, point):
        wal = WriteAheadLog(tmp_path)
        wal.append(RECORDS[0])
        plan = FaultPlan.of(FaultSpec(point, probability=1.0))
        with chaos(plan):
            with pytest.raises(ControlPlaneCrashError):
                wal.append(RECORDS[1])
        wal.close()
        records, truncated = read_log(tmp_path, repair=True)
        assert records == [RECORDS[0]]
        assert truncated > 0


class TestWalSingleByteCorruption:
    """Flip any single byte of a persisted segment: replay must never
    surface a wrong record -- it either returns a clean prefix of the
    original records (tail-segment damage) or raises
    ``WalCorruptionError`` (damage before the tail segment)."""

    def _written(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for record in RECORDS:
            wal.append(record)
        wal.close()
        path = segment_paths(tmp_path)[0]
        return path, path.read_bytes()

    def test_every_position_low_bit_flip_yields_clean_prefix(self, tmp_path):
        path, raw = self._written(tmp_path)
        bad = []
        for i in range(len(raw)):
            corrupt = bytearray(raw)
            corrupt[i] ^= 0x01
            path.write_bytes(bytes(corrupt))
            records, _ = read_log(tmp_path, repair=False)
            if records != RECORDS[: len(records)]:
                bad.append(i)
        assert bad == [], f"byte flips at {bad} surfaced a wrong record"

    def test_sampled_byte_and_mask_flips_yield_clean_prefix(self, tmp_path):
        path, raw = self._written(tmp_path)
        rng = random.Random(20260809)
        for _ in range(300):
            position, mask = rng.randrange(len(raw)), rng.randrange(1, 256)
            corrupt = bytearray(raw)
            corrupt[position] ^= mask
            path.write_bytes(bytes(corrupt))
            records, _ = read_log(tmp_path, repair=False)
            assert records == RECORDS[: len(records)], (
                f"flip at byte {position} with mask {mask:#x} surfaced a "
                "wrong record"
            )


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------


class TestCheckpoints:
    STATE = {"config": {"seed": 0}, "next_id": 3, "workflows": []}

    def test_round_trip(self, tmp_path):
        write_checkpoint(tmp_path, self.STATE, last_lsn=17)
        document, skipped = load_latest_checkpoint(tmp_path)
        assert document["state"] == self.STATE
        assert document["last_lsn"] == 17
        assert skipped == 0

    def test_empty_directory(self, tmp_path):
        assert load_latest_checkpoint(tmp_path) == (None, 0)

    def test_keeps_two_generations(self, tmp_path):
        for lsn in (10, 20, 30):
            write_checkpoint(tmp_path, self.STATE, last_lsn=lsn)
        paths = checkpoint_paths(tmp_path)
        assert [p.name for p in paths] == [
            "checkpoint-000000000020.json",
            "checkpoint-000000000030.json",
        ]

    def test_corrupt_latest_falls_back_to_previous(self, tmp_path):
        write_checkpoint(tmp_path, self.STATE, last_lsn=10)
        newest = write_checkpoint(tmp_path, self.STATE, last_lsn=20)
        raw = bytearray(newest.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        newest.write_bytes(bytes(raw))
        document, skipped = load_latest_checkpoint(tmp_path)
        assert document["last_lsn"] == 10
        assert skipped == 1


# ----------------------------------------------------------------------
# Durable engine: journaling and recovery
# ----------------------------------------------------------------------


def stuck_plan(probability=0.3):
    return FaultPlan.of(FaultSpec(STUCK_POINT, probability=probability))


def run_day(engine, seed=0, submissions=25, runner=None):
    """A deterministic mixed workload driven to completion."""
    rng = random.Random(seed)
    runner = runner or DiagnosticsRunner(engine, stuck_after_s=60, max_retries=2)
    kinds = list(WorkflowKind)
    now = 0
    for i in range(submissions):
        engine.submit(rng.choice(kinds), f"db-{i % 7}", now)
        now += rng.choice((10, 30, 50))
        engine.tick(now)
        runner.run_once(now)
    for _ in range(200):
        if engine.drained():
            break
        now += 30
        engine.tick(now)
        runner.run_once(now)
    return now


class TestDurableEngine:
    def test_fresh_directory_required(self, tmp_path):
        engine = DurableWorkflowEngine(tmp_path)
        engine.close()
        with pytest.raises(WalError):
            DurableWorkflowEngine(tmp_path)

    def test_recover_empty_directory_rejected(self, tmp_path):
        with pytest.raises(WalError):
            DurableWorkflowEngine.recover(tmp_path)

    def test_journal_before_apply(self, tmp_path):
        """A journal append that dies leaves the in-memory engine exactly
        as it was: the transition never happened."""
        engine = DurableWorkflowEngine(tmp_path)
        plan = FaultPlan.of(FaultSpec(CRASH_FAULT_POINT, probability=1.0))
        with chaos(plan):
            with pytest.raises(ControlPlaneCrashError):
                engine.submit(WorkflowKind.PROACTIVE_RESUME, "db-0", 0)
        assert engine.workflows == {}
        assert engine.pending_count == 0
        # The engine is still usable once the fault clears.
        engine.submit(WorkflowKind.PROACTIVE_RESUME, "db-0", 0)
        assert engine.pending_count == 1
        engine.close()

    def test_recover_after_close_is_identical(self, tmp_path):
        engine = DurableWorkflowEngine(
            tmp_path, seed=5, plan=stuck_plan(), checkpoint_every=16
        )
        run_day(engine, seed=5)
        live = engine.state_doc()
        engine.close()
        recovered = DurableWorkflowEngine.recover(tmp_path)
        assert canonical(recovered.state_doc()) == canonical(live)

    def test_recover_without_any_checkpoint_replays_all(self, tmp_path):
        engine = DurableWorkflowEngine(
            tmp_path, seed=2, plan=stuck_plan(), checkpoint_every=0
        )
        run_day(engine, seed=2)
        live = engine.state_doc()
        engine._wal.sync()  # the process dies without close()
        recovered = DurableWorkflowEngine.recover(tmp_path)
        assert recovered.recovery_info["checkpoint_lsn"] == 0
        assert recovered.recovery_info["replayed"] > 0
        assert canonical(recovered.state_doc()) == canonical(live)

    def test_checkpoint_plus_suffix_equals_full_replay(self, tmp_path):
        engine = DurableWorkflowEngine(
            tmp_path, seed=9, plan=stuck_plan(), checkpoint_every=16
        )
        run_day(engine, seed=9)
        live = engine.state_doc()
        engine._wal.sync()
        with_ckpt = DurableWorkflowEngine.recover(tmp_path)
        assert with_ckpt.recovery_info["checkpoint_lsn"] > 0
        # Drop the checkpoints: recovery must reach the same state from
        # the WAL alone.
        for path in checkpoint_paths(tmp_path):
            path.unlink()
        full_replay = DurableWorkflowEngine.recover(tmp_path)
        assert canonical(with_ckpt.state_doc()) == canonical(live)
        assert canonical(full_replay.state_doc()) == canonical(live)

    def test_corrupt_newest_checkpoint_degrades_to_longer_replay(self, tmp_path):
        engine = DurableWorkflowEngine(
            tmp_path, seed=4, plan=stuck_plan(), checkpoint_every=8
        )
        run_day(engine, seed=4)
        live = engine.state_doc()
        engine.close()
        newest = checkpoint_paths(tmp_path)[-1]
        raw = bytearray(newest.read_bytes())
        raw[len(raw) // 3] ^= 0x01
        newest.write_bytes(bytes(raw))
        recovered = DurableWorkflowEngine.recover(tmp_path)
        assert recovered.recovery_info["checkpoints_skipped"] == 1
        assert canonical(recovered.state_doc()) == canonical(live)

    def test_replayed_terminal_duplicate_is_deduplicated(self, tmp_path):
        engine = DurableWorkflowEngine(tmp_path, default_duration_s=10)
        engine.submit(WorkflowKind.REACTIVE_RESUME, "db-0", 0)
        engine.tick(0)
        engine.tick(10)  # wf 0 succeeds
        lsn = engine.lsn
        live = engine.state_doc()
        engine.close()
        # A duplicated terminal record (e.g. a buggy writer re-emitting a
        # finished workflow) must not re-execute it on replay.
        wal = WriteAheadLog(tmp_path)
        wal.append({"type": "succeeded", "wf": 0, "at": 10, "lsn": lsn})
        wal.close()
        recovered = DurableWorkflowEngine.recover(tmp_path)
        assert recovered.recovery_info["deduped"] == 1
        assert canonical(recovered.state_doc()) == canonical(live)

    def test_wrong_seed_replay_detected(self, tmp_path):
        """A WAL replayed against mismatched fault-injection state (here:
        a checkpoint from a different PRNG position) is corruption, not a
        silent divergence."""
        engine = DurableWorkflowEngine(
            tmp_path, seed=1, plan=stuck_plan(0.5), checkpoint_every=0
        )
        run_day(engine, seed=1, submissions=40)
        engine.close()
        records, _ = read_log(tmp_path)
        decisions = [r for r in records if r["type"] in ("started", "stuck")]
        assert {r["type"] for r in decisions} == {"started", "stuck"}
        # Flip one journaled start decision; the injector re-consultation
        # during replay must disagree and refuse.
        target = decisions[0]
        flipped = dict(target)
        flipped["type"] = "stuck" if target["type"] == "started" else "started"
        rewritten = [flipped if r is target else r for r in records]
        for path in segment_paths(tmp_path):
            path.unlink()
        for path in checkpoint_paths(tmp_path):
            path.unlink()
        wal = WriteAheadLog(tmp_path)
        for record in rewritten:
            wal.append(record)
        wal.close()
        with pytest.raises(WalCorruptionError):
            DurableWorkflowEngine.recover(tmp_path)

    def test_compact_drops_covered_segments(self, tmp_path):
        engine = DurableWorkflowEngine(
            tmp_path, segment_max_bytes=256, checkpoint_every=0
        )
        run_day(engine, seed=0, submissions=30)
        assert engine.wal_stats()["segments"] > 3
        engine.checkpoint()
        before = engine.wal_stats()["segments"]
        removed = engine.compact()
        assert removed > 0
        assert engine.wal_stats()["segments"] == before - removed
        live = engine.state_doc()
        engine.close()
        recovered = DurableWorkflowEngine.recover(tmp_path)
        assert canonical(recovered.state_doc()) == canonical(live)


# ----------------------------------------------------------------------
# Crash after every Nth record: the exactly-once property
# ----------------------------------------------------------------------


class _CrashOnNthAppend:
    """A stand-in injector for ``FAULTS``: fires one WAL fault point on
    exactly the n-th append, deterministically."""

    def __init__(self, point: str, nth: int):
        self.point = point
        self.remaining = nth

    def should_fire(self, point, now=None):
        if point != self.point:
            return False
        self.remaining -= 1
        return self.remaining == 0


def synthetic_schedule(seed, entries=24):
    rng = random.Random(f"schedule:{seed}")
    kinds = [kind.value for kind in WorkflowKind]
    return sorted(
        (rng.randrange(0, 1500), rng.choice(kinds), f"db-{rng.randrange(5)}")
        for _ in range(entries)
    )


def drive_schedule(engine, schedule, start_now=0, skip=None, progress=None):
    _drive(
        engine,
        DiagnosticsRunner(engine, stuck_after_s=60, max_retries=2),
        schedule,
        start_now,
        max(t for t, _, _ in schedule),
        tick_s=30,
        skip=skip,
        progress=progress,
    )


MODE_POINTS = (CRASH_FAULT_POINT, TORN_FAULT_POINT, CORRUPT_FAULT_POINT)


class TestCrashAfterEveryNthRecord:
    @hsettings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        nth=st.integers(min_value=2, max_value=80),
        point=st.sampled_from(MODE_POINTS),
    )
    def test_recovered_state_equals_uninterrupted_run(
        self, tmp_path_factory, seed, nth, point
    ):
        root = tmp_path_factory.mktemp("crashnth")
        schedule = synthetic_schedule(seed)
        engine_args = dict(
            max_concurrent=4,
            seed=seed,
            plan=stuck_plan(0.35),
            checkpoint_every=10,
        )

        reference = DurableWorkflowEngine(root / "ref", **engine_args)
        drive_schedule(reference, schedule)
        final = reference.state_doc()
        reference.close()

        victim = DurableWorkflowEngine(root / "vic", **engine_args)
        progress = {}
        previous = (FAULTS.enabled, FAULTS.injector)
        crashed = False
        try:
            FAULTS.enabled, FAULTS.injector = True, _CrashOnNthAppend(point, nth)
            drive_schedule(victim, schedule, progress=progress)
        except ControlPlaneCrashError:
            crashed = True
        finally:
            FAULTS.enabled, FAULTS.injector = previous

        if not crashed:
            # nth exceeded the run's total appends: the run is simply an
            # uninterrupted one and must already match.
            assert canonical(victim.state_doc()) == canonical(final)
            victim.close()
            return

        # Journal-before-apply: the dead process's in-memory state (minus
        # the injector streams, which advanced on the lost consultation)
        # is exactly what recovery rebuilds from disk.
        live = {k: v for k, v in victim.state_doc().items() if k != "injector"}
        recovered = DurableWorkflowEngine.recover(root / "vic")
        rebuilt = {
            k: v for k, v in recovered.state_doc().items() if k != "injector"
        }
        assert canonical(rebuilt) == canonical(live)

        # Finish the day from the crashed tick; the end state must be
        # byte-identical to the uninterrupted run -- including the
        # injector, whose re-decided consultations land it on the same
        # stream positions.
        drive_schedule(
            recovered,
            schedule,
            start_now=progress["now"],
            skip=dict(recovered.submitted_counts()),
        )
        assert canonical(recovered.state_doc()) == canonical(final)

        # Exactly-once over the full surviving ledger.
        terminals = terminal_record_counts(recovered.read_ledger())
        assert all(count == 1 for count in terminals.values())
        assert set(terminals) == set(recovered.workflows)
        assert all(w.terminal for w in recovered.workflows.values())
        recovered.close()


# ----------------------------------------------------------------------
# The end-to-end chaos scenario (smoke; CI runs the CLI flavour)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["crash", "torn", "corrupt"])
def test_crash_recovery_scenario(mode):
    from repro.experiments.common import ExperimentScale
    from repro.experiments.crash_recovery import run_crash_recovery

    result = run_crash_recovery(
        scale=ExperimentScale(n_databases=30, eval_days=1),
        crash_mode=mode,
        seed=11,
    )
    assert result.crashed
    assert result.reports_identical
    assert result.ledgers_identical
    assert result.exactly_once
    assert result.none_lost
    assert result.ok
    assert "byte-identical ok" in result.table()


def test_scenario_report_counts_sum(tmp_path):
    """The engine-derived KPI report counts every workflow exactly once
    across kinds and outcomes."""
    from repro.experiments.crash_recovery import control_plane_report

    engine = DurableWorkflowEngine(tmp_path, plan=stuck_plan(), seed=3)
    run_day(engine, seed=3)
    report = control_plane_report(engine)
    assert report["workflows"] == len(engine.workflows)
    assert report["pending"] == 0 and report["running"] == 0
    total = sum(k["submitted"] for k in report["kinds"].values())
    assert total == len(engine.workflows)
    done = sum(
        k["succeeded"] + k["failed"] for k in report["kinds"].values()
    )
    assert done == sum(1 for w in engine.workflows.values() if w.terminal)
    engine.close()


def test_workflow_state_values_cover_ledger():
    """Every state the engine can journal has a WorkflowState round trip
    (guards the replay switch in ``engine._replay``)."""
    for state in WorkflowState:
        assert WorkflowState(state.value) is state
