"""Dynamic micro-batching of prediction requests.

The same shape inference servers use: concurrent requests for the same
``(region, config, now)`` coalesce into one pending batch; the batch is
evaluated -- one :meth:`repro.core.fast_predictor.FastPredictor.
predict_fleet` call instead of N ``predict`` calls -- when any of three
triggers fires:

* **size**: the batch reached ``max_batch_size``;
* **linger**: ``max_linger_s`` elapsed since the batch opened (the upper
  bound a request can wait for co-batching under staggered arrivals);
* **idle hint**: the dispatch loop drained its queue, so no further
  co-batchable request is imminent -- flushing now trades nothing away
  (:meth:`MicroBatcher.flush_ready`).  This is what keeps closed-loop
  latency from paying the full linger on every round trip.

Each request holds an asyncio future resolved from the batch result, so
callers simply ``await submit(...)``.  Batching is a pure transport
optimisation: the equivalence property test proves the resolved values
are byte-identical to per-request ``FastPredictor.predict`` calls under
any interleaving of arrivals.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Dict, Hashable, List, Sequence, Tuple

from repro.errors import ConfigError
from repro.observability.metrics import LATENCY_BUCKETS_MS, SIZE_BUCKETS
from repro.observability.runtime import OBS
from repro.types import PredictedActivity

#: ``run_batch(key, fleet_logins, now) -> [PredictedActivity, ...]``: the
#: evaluation callback; the server wraps breaker/retry/faults around the
#: raw ``predict_fleet`` here.
BatchFn = Callable[
    [Hashable, List[Sequence[int]], int], List[PredictedActivity]
]


class _PendingBatch:
    __slots__ = ("key", "now", "entries", "timer", "flushed", "opened_at")

    def __init__(self, key: Hashable, now: int, opened_at: float):
        self.key = key
        self.now = now
        self.entries: List[Tuple[Sequence[int], asyncio.Future]] = []
        self.timer: Any = None
        self.flushed = False
        self.opened_at = opened_at


class MicroBatcher:
    """Coalesces concurrent ``submit`` calls into ``run_batch`` calls.

    ``max_batch_size=1`` degenerates to per-request serving (the benchmark
    baseline).  ``immediate=True`` (set during server drain) flushes every
    submission synchronously so shutdown can never wait on a linger timer.
    """

    def __init__(
        self,
        run_batch: BatchFn,
        max_batch_size: int = 64,
        max_linger_s: float = 0.002,
    ):
        if max_batch_size < 1:
            raise ConfigError("max_batch_size must be at least 1")
        if max_linger_s < 0:
            raise ConfigError("max_linger_s must be non-negative")
        self._run_batch = run_batch
        self._max_batch_size = max_batch_size
        self._max_linger_s = max_linger_s
        self._pending: Dict[Hashable, _PendingBatch] = {}
        self.immediate = False
        #: Batches evaluated and requests they carried (always-on ints).
        self.batches = 0
        self.batched_requests = 0

    @property
    def pending_requests(self) -> int:
        return sum(len(b.entries) for b in self._pending.values())

    async def submit(
        self, key: Hashable, logins: Sequence[int], now: int
    ) -> Tuple[PredictedActivity, int]:
        """Join (or open) the pending batch for ``(key, now)`` and await
        this request's slot of the batch result.  Returns ``(prediction,
        batch_size)`` -- the size is how many requests shared the
        evaluation, surfaced in :class:`~repro.serving.requests.
        PredictResponse` and asserted by the batching tests."""
        loop = asyncio.get_running_loop()
        batch_key = (key, now)
        batch = self._pending.get(batch_key)
        if batch is None:
            batch = _PendingBatch(key, now, time.perf_counter())
            self._pending[batch_key] = batch
            if not self.immediate and self._max_batch_size > 1:
                batch.timer = loop.call_later(
                    self._max_linger_s, self._flush, batch
                )
        future: asyncio.Future = loop.create_future()
        batch.entries.append((logins, future))
        if self.immediate or len(batch.entries) >= self._max_batch_size:
            self._flush(batch)
        return await future

    def flush_ready(self) -> None:
        """Flush every pending batch now (the dispatch loop's idle hint)."""
        for batch in list(self._pending.values()):
            self._flush(batch)

    # Kept as an explicit alias: shutdown flushes everything, and reads
    # better at the call site than the idle hint it happens to equal.
    flush_all = flush_ready

    def _flush(self, batch: _PendingBatch) -> None:
        if batch.flushed:
            return
        batch.flushed = True
        if batch.timer is not None:
            batch.timer.cancel()
            batch.timer = None
        self._pending.pop((batch.key, batch.now), None)
        self.batches += 1
        self.batched_requests += len(batch.entries)
        if OBS.enabled:
            linger_ms = (time.perf_counter() - batch.opened_at) * 1000.0
            OBS.metrics.histogram(
                "serving.batch.size", buckets=SIZE_BUCKETS
            ).observe(len(batch.entries))
            OBS.metrics.histogram(
                "serving.batch.linger_ms", buckets=LATENCY_BUCKETS_MS
            ).observe(linger_ms)
            # Windowed view for the live dashboard: batches per second
            # and the per-window worst linger (exemplar = batch key).
            now = time.monotonic()
            OBS.metrics.counter_series(
                "serving.batch.window", window_s=1.0
            ).inc(now)
            OBS.metrics.histogram_series(
                "serving.batch.linger_ms.window",
                window_s=1.0,
                buckets=LATENCY_BUCKETS_MS,
            ).observe(now, linger_ms, exemplar=str(batch.key))
        fleet = [logins for logins, _ in batch.entries]
        try:
            results = self._run_batch(batch.key, fleet, batch.now)
            if len(results) != len(batch.entries):
                raise ConfigError(
                    f"batch of {len(batch.entries)} got "
                    f"{len(results)} results"
                )
        except BaseException as exc:  # noqa: BLE001 - forwarded to futures
            for _, future in batch.entries:
                if not future.done():
                    future.set_exception(exc)
            return
        size = len(batch.entries)
        for (_, future), prediction in zip(batch.entries, results):
            if not future.done():
                future.set_result((prediction, size))
