"""KPI metrics of the ProRP infrastructure (Section 8).

Quality of service (QoS) is the percentage of first logins after an idle
interval that found resources already available (no reactive resume).
Operational cost (COGS) is the percentage of time resources sat idle while
allocated, broken down into logical pauses, correct proactive resumes (the
pre-warm gap before the customer actually logged in), and wrong proactive
resumes (pre-warmed but never used).  Overhead covers history size,
prediction latency, and the frequency of allocation/reclamation workflows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


def _percent(part: float, whole: float) -> float:
    return 100.0 * part / whole if whole else 0.0


@dataclass(frozen=True)
class LoginStats:
    """First logins after idle intervals, classified by resource state."""

    #: Logins that found resources allocated (logical pause or pre-warm).
    with_resources: int = 0
    #: Logins that triggered a reactive resume (resources were reclaimed).
    reactive: int = 0
    #: The subset of ``reactive`` attributable to injected faults or
    #: fault-degraded (reactive-fallback) operation rather than to the
    #: policy's own decisions -- kept separate so chaos experiments can
    #: tell "the policy was wrong" from "the infrastructure failed".
    reactive_faulted: int = 0

    @property
    def total(self) -> int:
        return self.with_resources + self.reactive

    @property
    def qos_percent(self) -> float:
        """Figure 6(a)/7(a): % of logins with resources available."""
        return _percent(self.with_resources, self.total)

    @property
    def reactive_percent(self) -> float:
        return _percent(self.reactive, self.total)

    @property
    def fault_affected_percent(self) -> float:
        """% of first logins degraded by faults rather than by the policy."""
        return _percent(self.reactive_faulted, self.total)


@dataclass(frozen=True)
class IdleBreakdown:
    """Idle-but-allocated time by cause (Figure 6(b)/7(b)), in seconds."""

    logical_pause_s: int = 0
    correct_proactive_s: int = 0
    wrong_proactive_s: int = 0

    @property
    def total_s(self) -> int:
        return self.logical_pause_s + self.correct_proactive_s + self.wrong_proactive_s


@dataclass(frozen=True)
class WorkflowCounts:
    """Resource allocation/reclamation workflow volumes (Figures 11-12)."""

    proactive_resumes: int = 0
    reactive_resumes: int = 0
    logical_pauses: int = 0
    physical_pauses: int = 0
    #: Proactive resumes later confirmed by a customer login.
    correct_proactive_resumes: int = 0
    #: Proactive resumes that expired unused (wrong proactive resume).
    wrong_proactive_resumes: int = 0
    #: Resumes forced by system maintenance operations (Section 3.3):
    #: ignored by the policy and excluded from the customer KPIs.
    maintenance_resumes: int = 0


@dataclass(frozen=True)
class KpiReport:
    """The full KPI evaluation of one policy over one region and window."""

    policy: str
    n_databases: int
    eval_start: int
    eval_end: int
    logins: LoginStats
    idle: IdleBreakdown
    workflows: WorkflowCounts
    #: Demanded-but-unavailable seconds (the striped area of Figure 2(a)).
    unavailable_s: int = 0
    #: Demanded-and-allocated seconds (resources correctly used).
    used_s: int = 0
    #: Idle-and-reclaimed seconds (resources correctly saved).
    saved_s: int = 0
    #: Customer-idle seconds with resources held for system maintenance:
    #: a provider cost tracked outside the policy's COGS (Section 3.3).
    maintenance_s: int = 0
    #: Wall-clock latency samples of next-activity prediction, in seconds
    #: (Figure 10(c)); empty for policies that never predict.
    prediction_latencies_s: List[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Derived percentages
    # ------------------------------------------------------------------

    @property
    def fleet_seconds(self) -> int:
        """Total database-seconds in the evaluation window."""
        return self.n_databases * (self.eval_end - self.eval_start)

    @property
    def qos_percent(self) -> float:
        return self.logins.qos_percent

    @property
    def idle_percent(self) -> float:
        """% of fleet time with idle allocated resources (total COGS)."""
        return _percent(self.idle.total_s, self.fleet_seconds)

    @property
    def idle_logical_pause_percent(self) -> float:
        return _percent(self.idle.logical_pause_s, self.fleet_seconds)

    @property
    def idle_correct_proactive_percent(self) -> float:
        return _percent(self.idle.correct_proactive_s, self.fleet_seconds)

    @property
    def idle_wrong_proactive_percent(self) -> float:
        return _percent(self.idle.wrong_proactive_s, self.fleet_seconds)

    @property
    def unavailable_percent(self) -> float:
        return _percent(self.unavailable_s, self.fleet_seconds)

    @property
    def used_percent(self) -> float:
        return _percent(self.used_s, self.fleet_seconds)

    @property
    def saved_percent(self) -> float:
        return _percent(self.saved_s, self.fleet_seconds)

    @property
    def maintenance_percent(self) -> float:
        return _percent(self.maintenance_s, self.fleet_seconds)

    def accounted_seconds(self) -> int:
        """used + saved + idle + unavailable (+ maintenance-held time):
        must equal fleet time -- the four quadrants of Definition 2.2
        partition every database-second, with system-maintenance holds
        tracked as their own slice of the idle quadrant."""
        return (
            self.used_s
            + self.saved_s
            + self.idle.total_s
            + self.unavailable_s
            + self.maintenance_s
        )

    def to_dict(self) -> Dict[str, object]:
        """Flat summary for the telemetry store and training pipeline."""
        return {
            "policy": self.policy,
            "n_databases": self.n_databases,
            "eval_start": self.eval_start,
            "eval_end": self.eval_end,
            "qos_percent": round(self.qos_percent, 3),
            "idle_percent": round(self.idle_percent, 3),
            "idle_logical_pause_percent": round(self.idle_logical_pause_percent, 3),
            "idle_correct_proactive_percent": round(
                self.idle_correct_proactive_percent, 3
            ),
            "idle_wrong_proactive_percent": round(
                self.idle_wrong_proactive_percent, 3
            ),
            "unavailable_percent": round(self.unavailable_percent, 3),
            "logins_total": self.logins.total,
            "logins_with_resources": self.logins.with_resources,
            "logins_reactive": self.logins.reactive,
            "logins_reactive_faulted": self.logins.reactive_faulted,
            "proactive_resumes": self.workflows.proactive_resumes,
            "reactive_resumes": self.workflows.reactive_resumes,
            "logical_pauses": self.workflows.logical_pauses,
            "physical_pauses": self.workflows.physical_pauses,
            "correct_proactive_resumes": self.workflows.correct_proactive_resumes,
            "wrong_proactive_resumes": self.workflows.wrong_proactive_resumes,
        }
