"""Equivalence + durability suite for the online tuning subsystem.

Three contracts pin ``repro/tuning/`` to the rest of the codebase:

* **Byte identity** -- a predictor bank restricted to ``("sliding",)``
  is a pure delegate of the engine's existing cache + FastPredictor
  path: KPIs, workflow event times, pre-warm batches, hot-path counters,
  and (under chaos) the fault-injector consultation ledger are
  bit-for-bit those of a bank-less run, on both the per-actor and the
  columnar lean engines.  Likewise a tuner run with zero challengers and
  no bank reproduces the static baseline series exactly.
* **Durability** -- tuner decisions are journaled before they apply, so
  a crash (clean, torn-write, or corrupt-tail) at any journal append
  recovers to a tuner whose post-recovery decisions are identical to the
  uninterrupted twin's.
* **Drift generators are pure and picklable** -- ``DriftSpec`` rides the
  multiprocess fleet path, so ``materialize`` must be a deterministic
  pure function of ``(spec, lo, hi)``.

Harness style mirrors ``tests/test_prediction_cache.py``.
"""

import pickle
import random

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG, ProRPConfig
from repro.controlplane.durability.wal import (
    CRASH_FAULT_POINT,
    TORN_FAULT_POINT,
)
from repro.core.prediction_cache import HOT_PATH
from repro.core.resume_service import SCAN_FAULT_POINT
from repro.errors import ConfigError, ControlPlaneCrashError, TuningError
from repro.faults import FaultPlan, FaultSpec, chaos
from repro.simulation.actor import PREDICTOR_FAULT_POINT
from repro.simulation.fleet import simulate_fleet
from repro.simulation.region import SimulationSettings, simulate_region
from repro.tuning import (
    BANK_POLICIES,
    BankSettings,
    OnlineKnobTuner,
    PredictorBank,
    TunerSettings,
    candidate_population,
    default_candidates,
    hybrid_histogram_predict,
    register_tuning_metrics,
    survival_predict,
    validate_knob_candidates,
)
from repro.tuning.driver import run_online_tuning
from repro.types import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    ActivityTrace,
    PredictedActivity,
    Session,
)
from repro.workload.fleetgen import DRIFT_KINDS, DriftSpec, FleetShardSpec

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR
SPAN_DAYS = 32

EVAL_KWARGS = dict(eval_start=30 * DAY, eval_end=31 * DAY, warmup_s=DAY)

CONFIG_VARIANTS = {
    "daily": DEFAULT_CONFIG,
    "adaptive": DEFAULT_CONFIG.with_overrides(auto_seasonality=True),
    "tight": ProRPConfig(
        logical_pause_s=3 * HOUR,
        window_s=2 * HOUR,
        slide_s=15 * 60,
        confidence=0.3,
    ),
}

CHAOS_PLAN = FaultPlan.of(
    FaultSpec(PREDICTOR_FAULT_POINT, probability=0.25),
    FaultSpec(SCAN_FAULT_POINT, probability=0.1),
)

#: Seeded end-to-end identity scenarios (3 fleets x 3 variants + chaos).
SCENARIOS = [
    pytest.param(seed, variant, plan, id=f"seed{seed}-{variant}{'-chaos' if plan else ''}")
    for seed in range(3)
    for variant, plan in [
        ("daily", None),
        ("adaptive", None),
        ("tight", None),
        ("daily", CHAOS_PLAN),
    ]
]

ALL_POLICIES = ("sliding", "hybrid_histogram", "survival")


def make_fleet(seed: int, n: int = 6):
    """A small deterministic fleet with arbitrary session structures."""
    rng = random.Random(seed)
    traces = []
    for i in range(n):
        sessions = []
        cursor = rng.randint(0, 3 * DAY)
        while cursor < SPAN_DAYS * DAY - HOUR:
            duration = rng.randint(60, 12 * HOUR)
            end = min(cursor + duration, SPAN_DAYS * DAY)
            sessions.append(Session(cursor, end))
            cursor = end + rng.randint(60, 2 * DAY)
        created = rng.choice([0, sessions[0].start if sessions else 0])
        traces.append(ActivityTrace(f"db-{seed}-{i}", sessions, created_at=created))
    return traces


def daily_logins(n: int = 10, hour: int = 9) -> np.ndarray:
    return np.array([hour * HOUR + d * DAY for d in range(n)], dtype=np.int64)


# ----------------------------------------------------------------------
# Byte identity: sliding-only bank == no bank
# ----------------------------------------------------------------------


def _workflow_times(result):
    return [
        (
            outcome.database_id,
            outcome.physical_pause_times,
            outcome.logical_pause_times,
            outcome.proactive_resume_times,
            outcome.reactive_resume_times,
        )
        for outcome in result.outcomes
    ]


def _run_region(traces, config, bank, plan, chaos_seed=1234):
    settings = SimulationSettings(predictor_bank=bank, **EVAL_KWARGS)
    HOT_PATH.reset()
    if plan is None:
        result = simulate_region(traces, "proactive", config, settings)
        return result, HOT_PATH.snapshot(), None
    with chaos(plan, seed=chaos_seed) as injector:
        result = simulate_region(traces, "proactive", config, settings)
        ledger = (injector.total_consults(), dict(injector.consults),
                  injector.total_fires())
    return result, HOT_PATH.snapshot(), ledger


class TestSlidingBankByteIdentity:
    @pytest.mark.parametrize("seed, variant, plan", SCENARIOS)
    def test_region_engine(self, seed, variant, plan):
        traces = make_fleet(seed)
        config = CONFIG_VARIANTS[variant]
        off, off_hot, off_ledger = _run_region(traces, config, (), plan)
        on, on_hot, on_ledger = _run_region(traces, config, ("sliding",), plan)
        assert on.kpis().to_dict() == off.kpis().to_dict()
        assert on.prewarm_batch_sizes() == off.prewarm_batch_sizes()
        assert _workflow_times(on) == _workflow_times(off)
        # Zero shadow work: the hot-path counters (cache hits/misses,
        # batch evals, full scans) must be bit-identical too.
        assert on_hot == off_hot
        assert on_ledger == off_ledger

    @pytest.mark.parametrize("seed", range(3))
    def test_columnar_fleet_engine(self, seed):
        spec = FleetShardSpec(n_databases=16, span_days=8, seed=seed)
        kwargs = dict(eval_start=6 * DAY, eval_end=7 * DAY, warmup_s=DAY)
        HOT_PATH.reset()
        off = simulate_fleet(
            spec, "proactive", settings=SimulationSettings(**kwargs)
        )
        off_hot = HOT_PATH.snapshot()
        HOT_PATH.reset()
        on = simulate_fleet(
            spec,
            "proactive",
            settings=SimulationSettings(predictor_bank=("sliding",), **kwargs),
        )
        assert on.kpis.to_dict() == off.kpis.to_dict()
        assert HOT_PATH.snapshot() == off_hot

    def test_full_bank_runs_and_observes(self):
        """The three-policy bank completes end-to-end on both engines and
        produces a well-formed KPI report (it may legitimately differ)."""
        spec = FleetShardSpec(n_databases=12, span_days=8, seed=3)
        settings = SimulationSettings(
            eval_start=6 * DAY,
            eval_end=7 * DAY,
            warmup_s=3 * DAY,
            predictor_bank=ALL_POLICIES,
        )
        result = simulate_fleet(spec, "proactive", settings=settings)
        assert 0.0 <= result.kpis.qos_percent <= 100.0
        traces = make_fleet(4)
        region = simulate_region(
            traces,
            "proactive",
            DEFAULT_CONFIG,
            SimulationSettings(predictor_bank=ALL_POLICIES, **EVAL_KWARGS),
        )
        assert 0.0 <= region.kpis().qos_percent <= 100.0

    def test_reactive_policy_ignores_bank(self):
        """The bank only exists on the proactive policy."""
        traces = make_fleet(0)
        settings = SimulationSettings(
            predictor_bank=ALL_POLICIES, **EVAL_KWARGS
        )
        off = simulate_region(
            traces, "reactive", DEFAULT_CONFIG,
            SimulationSettings(**EVAL_KWARGS),
        )
        on = simulate_region(traces, "reactive", DEFAULT_CONFIG, settings)
        assert on.kpis().to_dict() == off.kpis().to_dict()

    def test_unknown_bank_policy_rejected_at_settings(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="unknown"):
            SimulationSettings(predictor_bank=("slidign",), **EVAL_KWARGS)


# ----------------------------------------------------------------------
# PredictorBank unit behaviour
# ----------------------------------------------------------------------


class TestPredictorBank:
    def test_sliding_only_is_pure_delegate(self):
        bank = PredictorBank(("sliding",), DEFAULT_CONFIG)
        marker = PredictedActivity(5, 10, 0.5)
        calls = []

        def sliding_fn():
            calls.append(1)
            return marker

        out = bank.predict("db", 100, lambda: daily_logins(), sliding_fn)
        assert out is marker and calls == [1]
        # No shadow state, and login feedback is a no-op.
        assert bank._dbs == {}
        bank.observe_login("db", 200)
        assert bank._dbs == {} and bank.switches == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError, match="unknown predictor policy"):
            PredictorBank(("sliding", "nope"), DEFAULT_CONFIG)
        with pytest.raises(ConfigError):
            PredictorBank((), DEFAULT_CONFIG)

    def test_hybrid_histogram_regular_gaps(self):
        logins = daily_logins(10)
        now = int(logins[-1]) + HOUR
        p = hybrid_histogram_predict(logins, now, DEFAULT_CONFIG)
        assert p is not None
        assert p.start == int(logins[-1]) + DAY
        assert p.confidence == 1.0

    def test_hybrid_histogram_unrepresentative(self):
        # Too few samples.
        assert hybrid_histogram_predict(
            daily_logins(3), 3 * DAY, DEFAULT_CONFIG
        ) is None
        # Wildly irregular gaps (high coefficient of variation): six
        # one-minute gaps then a single month-long one.
        logins = np.array(
            [0, 60, 120, 180, 240, 300, 360, 30 * DAY], dtype=np.int64
        )
        assert hybrid_histogram_predict(
            logins, 30 * DAY + HOUR, DEFAULT_CONFIG
        ) is None
        # Stale: the expected gap elapsed long ago.
        assert hybrid_histogram_predict(
            daily_logins(10), int(daily_logins(10)[-1]) + 5 * DAY, DEFAULT_CONFIG
        ) is None

    def test_survival_hazards_forward(self):
        gaps = [6 * HOUR, 12 * HOUR, DAY, DAY, 2 * DAY, 2 * DAY, 3 * DAY]
        logins = np.cumsum(np.array([0] + gaps, dtype=np.int64))
        last = int(logins[-1])
        early = survival_predict(logins, last + HOUR, DEFAULT_CONFIG)
        late = survival_predict(
            logins, last + DAY + 12 * HOUR, DEFAULT_CONFIG
        )
        assert early is not None and late is not None
        # The conditional estimate hazards forward: once the short gaps
        # are ruled out by elapsed idle, only the long ones survive and
        # the predicted start moves later.
        assert late.start > early.start
        # Few survivors (elapsed beyond almost every observed gap) -> None.
        assert survival_predict(
            logins, last + 2 * DAY + 12 * HOUR, DEFAULT_CONFIG
        ) is None

    def test_switches_to_better_policy_with_hysteresis(self):
        bank = PredictorBank(
            ("sliding", "hybrid_histogram"),
            DEFAULT_CONFIG,
            BankSettings(switch_after=2),
        )
        key = "db"
        empty = PredictedActivity.none()
        n = 10
        for round_no in range(3):
            logins = daily_logins(n + round_no)
            now = int(logins[-1]) + HOUR
            # The engine's sliding path keeps missing; the histogram nails it.
            bank.predict(key, now, lambda l=logins: l, lambda: empty)
            if round_no < 2:
                assert bank.selected_policy(key) == "sliding"
            bank.observe_login(key, int(logins[-1]) + DAY)
        assert bank.selected_policy(key) == "hybrid_histogram"
        assert bank.switches == 1
        assert bank.selection_counts()["hybrid_histogram"] == 1

    def test_regret_costs(self):
        bank = PredictorBank(ALL_POLICIES, DEFAULT_CONFIG)
        t = 1000
        # Empty / late predictions cost the full miss.
        assert bank._cost(0, PredictedActivity.none(), t) == 1.0
        assert bank._cost(0, PredictedActivity(t + 1, t + 2, 0.9), t) == 1.0
        # A prediction that covered the login costs the (weighted,
        # capped) premature-resume fraction.
        horizon = DEFAULT_CONFIG.logical_pause_s
        exact = bank._cost(0, PredictedActivity(t, t + 1, 0.9), t)
        assert exact == 0.0
        early = bank._cost(
            0, PredictedActivity(t - horizon // 2, t + 1, 0.9), t
        )
        assert 0.0 < early <= bank.settings.premature_weight

    def test_bank_settings_validation(self):
        with pytest.raises(ConfigError):
            BankSettings(regret_alpha=0.0)
        with pytest.raises(ConfigError):
            BankSettings(switch_after=0)
        with pytest.raises(ConfigError):
            BankSettings(max_gaps=1)


# ----------------------------------------------------------------------
# Candidate validation (shared with the offline sweep)
# ----------------------------------------------------------------------


class TestCandidates:
    def test_unknown_knob(self):
        with pytest.raises(ConfigError, match="unknown knob"):
            validate_knob_candidates(DEFAULT_CONFIG, {"confidnce": [0.1]})

    def test_empty_values(self):
        with pytest.raises(ConfigError, match="no candidate values"):
            validate_knob_candidates(DEFAULT_CONFIG, {"confidence": []})

    def test_invalid_value_is_typed_config_error(self):
        with pytest.raises(ConfigError, match="invalid candidate"):
            validate_knob_candidates(DEFAULT_CONFIG, {"confidence": [0.1, -1.0]})

    def test_population_dedups_and_orders(self):
        base = DEFAULT_CONFIG
        population = candidate_population(
            base,
            {
                "confidence": [base.confidence, 0.3, 0.3, 0.5],
                "window_s": [base.window_s],
            },
        )
        assert [c.confidence for c in population] == [0.3, 0.5]
        assert all(c != base for c in population)

    def test_default_candidates_are_valid_challengers(self):
        spread = default_candidates(DEFAULT_CONFIG)
        population = candidate_population(DEFAULT_CONFIG, spread)
        assert len(population) == 6
        assert len(set(population)) == len(population)


# ----------------------------------------------------------------------
# OnlineKnobTuner decision mechanics
# ----------------------------------------------------------------------


def _challengers(n: int):
    return tuple(
        DEFAULT_CONFIG.with_overrides(confidence=0.2 + 0.1 * i)
        for i in range(n)
    )


class TestTunerDecisions:
    def test_single_candidate_never_moves(self):
        tuner = OnlineKnobTuner(DEFAULT_CONFIG)
        for w in range(4):
            decision = tuner.record_window({0: 50.0 + w})
            assert decision.active == 0
            assert decision.alive == (0,)
            assert decision.promoted is None and not decision.demoted

    def test_promotion_needs_consecutive_wins(self):
        tuner = OnlineKnobTuner(
            DEFAULT_CONFIG,
            _challengers(1),
            settings=TunerSettings(promote_after=2, halve_every=100),
        )
        assert tuner.record_window({0: 50.0, 1: 55.0}).promoted is None
        # A losing window resets the streak.
        assert tuner.record_window({0: 50.0, 1: 49.0}).promoted is None
        assert tuner.record_window({0: 50.0, 1: 55.0}).promoted is None
        decision = tuner.record_window({0: 50.0, 1: 55.0})
        assert decision.promoted == 1 and decision.active == 1

    def test_demotion_guard_is_immediate(self):
        tuner = OnlineKnobTuner(
            DEFAULT_CONFIG,
            _challengers(1),
            settings=TunerSettings(promote_after=1, halve_every=100),
        )
        tuner.record_window({0: 50.0, 1: 60.0})
        assert tuner.active_index == 1
        decision = tuner.record_window({0: 50.0, 1: 49.9})
        assert decision.demoted and decision.active == 0

    def test_halving_never_prunes_baseline_or_active(self):
        tuner = OnlineKnobTuner(
            DEFAULT_CONFIG,
            _challengers(4),
            settings=TunerSettings(
                promote_after=1, promote_margin=0.1, halve_every=1,
                min_challengers=1,
            ),
        )
        decision = tuner.record_window(
            {0: 50.0, 1: 40.0, 2: 60.0, 3: 30.0, 4: 45.0}
        )
        assert decision.active == 2  # promoted in the same window
        assert 0 in decision.alive and 2 in decision.alive
        assert all(i not in decision.pruned for i in (0, 2))
        assert len(decision.pruned) >= 1

    def test_missing_alive_score_raises(self):
        tuner = OnlineKnobTuner(DEFAULT_CONFIG, _challengers(2))
        with pytest.raises(TuningError, match="missing scores"):
            tuner.record_window({0: 50.0, 1: 55.0})
        with pytest.raises(TuningError, match="non-alive"):
            tuner.record_window({0: 50.0, 1: 55.0, 2: 52.0, 9: 1.0})


# ----------------------------------------------------------------------
# Durability: crash at the journal == uninterrupted twin
# ----------------------------------------------------------------------


SCORE_SCRIPT = [
    {0: 50.0, 1: 52.0, 2: 48.0},
    {0: 50.0, 1: 53.0, 2: 47.0},
    {0: 50.0, 1: 54.0},
    {0: 50.0, 1: 49.0},
]


def _drive(tuner, script):
    decisions = []
    for w, scores in enumerate(script):
        alive = set(tuner.alive_indices)
        decisions.append(
            tuner.record_window(
                {i: s for i, s in scores.items() if i in alive}, now=w * DAY
            )
        )
    return decisions


class TestTunerDurability:
    def _twin(self):
        tuner = OnlineKnobTuner(
            DEFAULT_CONFIG, _challengers(2),
            settings=TunerSettings(promote_after=2),
        )
        return tuner, _drive(tuner, SCORE_SCRIPT)

    def test_recover_from_journal_only(self, tmp_path):
        durable = OnlineKnobTuner(
            DEFAULT_CONFIG, _challengers(2), state_dir=tmp_path,
            settings=TunerSettings(promote_after=2),
        )
        _drive(durable, SCORE_SCRIPT[:2])
        durable.close()  # crash without ever checkpointing

        recovered = OnlineKnobTuner.recover(
            DEFAULT_CONFIG, _challengers(2), tmp_path,
            settings=TunerSettings(promote_after=2),
        )
        _, twin_decisions = self._twin()
        assert recovered.expected_window == 2
        assert recovered.decisions == twin_decisions[:2]
        assert _drive(recovered, SCORE_SCRIPT[2:]) == twin_decisions[2:]

    def test_recover_from_checkpoint_plus_tail(self, tmp_path):
        durable = OnlineKnobTuner(
            DEFAULT_CONFIG, _challengers(2), state_dir=tmp_path,
            settings=TunerSettings(promote_after=2),
        )
        _drive(durable, SCORE_SCRIPT[:2])
        durable.checkpoint()
        _drive(durable, SCORE_SCRIPT[2:3])  # journaled past the checkpoint
        durable.close()

        recovered = OnlineKnobTuner.recover(
            DEFAULT_CONFIG, _challengers(2), tmp_path,
            settings=TunerSettings(promote_after=2),
        )
        _, twin_decisions = self._twin()
        partial_twin = OnlineKnobTuner(
            DEFAULT_CONFIG, _challengers(2),
            settings=TunerSettings(promote_after=2),
        )
        _drive(partial_twin, SCORE_SCRIPT[:3])
        assert recovered.expected_window == 3
        assert recovered._state.to_dict() == partial_twin._state.to_dict()
        assert _drive(recovered, SCORE_SCRIPT[3:]) == twin_decisions[3:]

    @pytest.mark.parametrize("point", [CRASH_FAULT_POINT, TORN_FAULT_POINT])
    def test_injected_crash_then_identical_decisions(self, tmp_path, point):
        durable = OnlineKnobTuner(
            DEFAULT_CONFIG, _challengers(2), state_dir=tmp_path,
            settings=TunerSettings(promote_after=2),
        )
        _drive(durable, SCORE_SCRIPT[:2])
        with chaos(FaultPlan.of(FaultSpec(point, probability=1.0)), seed=7):
            with pytest.raises(ControlPlaneCrashError):
                durable.record_window(SCORE_SCRIPT[2], now=2 * DAY)
        # The crash interrupted window 2 before it applied.
        assert durable.expected_window == 2
        durable.close()

        recovered = OnlineKnobTuner.recover(
            DEFAULT_CONFIG, _challengers(2), tmp_path,
            settings=TunerSettings(promote_after=2),
        )
        _, twin_decisions = self._twin()
        assert recovered.expected_window == 2
        # Re-submitting the interrupted window produces the exact
        # decision the uninterrupted twin made.
        assert _drive(recovered, SCORE_SCRIPT[2:]) == twin_decisions[2:]

    def test_journal_gap_raises(self, tmp_path):
        durable = OnlineKnobTuner(
            DEFAULT_CONFIG, _challengers(1), state_dir=tmp_path
        )
        durable.record_window({0: 50.0, 1: 51.0}, now=0)
        durable._wal.append(
            {"type": "tuning.window", "window": 5, "scores": {"0": 1.0, "1": 1.0}},
            now=DAY,
        )
        durable.close()
        with pytest.raises(TuningError, match="journal gap"):
            OnlineKnobTuner.recover(DEFAULT_CONFIG, _challengers(1), tmp_path)


# ----------------------------------------------------------------------
# Driver: the no-op configuration reproduces the static series exactly
# ----------------------------------------------------------------------


class TestDriver:
    SPEC = FleetShardSpec(n_databases=10, span_days=8, seed=5)
    SETTINGS_KWARGS = dict(warmup_s=DAY)

    def _settings(self):
        return SimulationSettings(
            eval_start=5 * DAY, eval_end=6 * DAY, **self.SETTINGS_KWARGS
        )

    def test_no_challengers_no_bank_equals_static(self):
        report = run_online_tuning(
            self.SPEC,
            DEFAULT_CONFIG,
            challengers=(),
            n_windows=2,
            settings=self._settings(),
        )
        assert report.online_kpis.to_dict() == report.static_kpis.to_dict()
        assert report.online_score == report.static_score
        assert report.promotions == 0 and report.demotions == 0
        assert report.dominates_static
        # And the static series is the plain per-window evaluation: the
        # baseline (candidate 0) scores exactly the static score, which
        # is the default objective on a direct simulate_fleet run.
        from repro.training.objective import qos_priority_objective

        objective = qos_priority_objective()
        for outcome in report.windows:
            assert outcome.scores == ((0, outcome.static_score),)
            assert outcome.online_score == outcome.static_score
            direct = simulate_fleet(
                self.SPEC,
                "proactive",
                config=DEFAULT_CONFIG,
                settings=SimulationSettings(
                    eval_start=outcome.eval_start,
                    eval_end=outcome.eval_end,
                    **self.SETTINGS_KWARGS,
                ),
            )
            assert outcome.static_score == objective(direct.kpis)

    def test_driver_resume_matches_uninterrupted(self, tmp_path):
        challengers = _challengers(2)
        kwargs = dict(
            n_windows=3,
            settings=self._settings(),
        )
        full = run_online_tuning(
            self.SPEC, DEFAULT_CONFIG, challengers,
            state_dir=tmp_path / "full", **kwargs,
        )
        # Crash after one window: journal holds window 0 only.
        partial_dir = tmp_path / "partial"
        partial = run_online_tuning(
            self.SPEC, DEFAULT_CONFIG, challengers,
            n_windows=1, settings=self._settings(),
            state_dir=partial_dir,
        )
        assert partial.decisions == full.decisions[:1]
        recovered = OnlineKnobTuner.recover(
            DEFAULT_CONFIG, challengers, partial_dir
        )
        resumed = run_online_tuning(
            self.SPEC, DEFAULT_CONFIG, challengers,
            tuner=recovered, state_dir=partial_dir, **kwargs,
        )
        assert resumed.decisions == full.decisions[1:]
        assert [w.scores for w in resumed.windows] == [
            w.scores for w in full.windows[1:]
        ]

    def test_rejects_mismatched_resume(self):
        tuner = OnlineKnobTuner(DEFAULT_CONFIG, _challengers(1))
        with pytest.raises(TuningError, match="candidate population"):
            run_online_tuning(
                self.SPEC, DEFAULT_CONFIG, _challengers(2),
                n_windows=2, settings=self._settings(), tuner=tuner,
            )

    def test_rejects_bad_window_counts(self):
        with pytest.raises(TuningError):
            run_online_tuning(self.SPEC, n_windows=0)
        tuner = OnlineKnobTuner(DEFAULT_CONFIG)
        tuner.record_window({0: 1.0})
        with pytest.raises(TuningError, match="nothing to do"):
            run_online_tuning(
                self.SPEC, DEFAULT_CONFIG, n_windows=1,
                settings=self._settings(), tuner=tuner,
            )


# ----------------------------------------------------------------------
# Drift generators: pure, picklable, validated
# ----------------------------------------------------------------------


def _specs():
    base = FleetShardSpec(n_databases=12, span_days=8, seed=2)
    return [
        DriftSpec(base, kind="archetype_switch", at_day=4),
        DriftSpec(base, kind="dst_shift", at_day=4, shift_minutes=60),
        DriftSpec(base, kind="migration", at_day=4, shift_minutes=180,
                  fraction=0.5),
    ]


class TestDriftGenerators:
    @pytest.mark.parametrize(
        "spec", _specs(), ids=[s.kind for s in _specs()]
    )
    def test_pure_and_picklable(self, spec):
        assert pickle.loads(pickle.dumps(spec)) == spec
        a, b = spec.materialize(), spec.materialize()
        assert np.array_equal(a.starts, b.starts)
        assert np.array_equal(a.ends, b.ends)
        full = spec.materialize()
        part = spec.materialize(0, 6)
        assert part.n == 6
        # Sessions stay valid traces end-to-end.
        traces = full.to_traces()
        assert len(traces) == spec.n_databases
        for trace in traces:
            starts = [s.start for s in trace.sessions]
            assert starts == sorted(starts)
            assert all(s.end > s.start for s in trace.sessions)

    def test_drift_changes_post_drift_sessions_only(self):
        base = FleetShardSpec(n_databases=12, span_days=8, seed=2)
        t = 4 * DAY
        plain = base.materialize()
        shifted = DriftSpec(
            base, kind="dst_shift", at_day=4, shift_minutes=60
        ).materialize()
        pre_plain = plain.starts[plain.starts < t]
        pre_shifted = shifted.starts[shifted.starts < t]
        assert np.array_equal(np.sort(pre_plain), np.sort(pre_shifted))
        post_plain = np.sort(plain.starts[plain.starts >= t])
        post_shifted = np.sort(shifted.starts[shifted.starts >= t])
        # Every post-drift session moved by exactly the shift (modulo
        # boundary repairs, the bulk moved).
        moved = np.isin(post_plain + 3600, post_shifted)
        assert moved.mean() > 0.9

    def test_validation(self):
        from repro.errors import TraceError

        base = FleetShardSpec(n_databases=4, span_days=8, seed=0)
        with pytest.raises(TraceError):
            DriftSpec(base, kind="nope", at_day=4)
        with pytest.raises(TraceError):
            DriftSpec(base, kind="dst_shift", at_day=0)
        with pytest.raises(TraceError):
            DriftSpec(base, kind="dst_shift", at_day=9)
        with pytest.raises(TraceError):
            DriftSpec(base, kind="dst_shift", at_day=4, shift_minutes=0)
        with pytest.raises(TraceError):
            DriftSpec(base, kind="migration", at_day=4, fraction=0.0)
        assert DRIFT_KINDS == ("archetype_switch", "dst_shift", "migration")

    def test_drift_shards_deterministically(self):
        """Drifted shards regenerate identically in pooled workers (the
        spec rides the multiprocess path like a plain FleetShardSpec)."""
        from repro.parallel import SerialExecutor
        from repro.simulation.fleet import simulate_fleet_sharded

        spec = _specs()[0]
        settings = SimulationSettings(eval_start=6 * DAY, eval_end=7 * DAY)
        serial = simulate_fleet_sharded(
            spec, "proactive", settings=settings,
            n_shards=3, executor=SerialExecutor(),
        )
        pooled = simulate_fleet_sharded(
            spec, "proactive", settings=settings, n_shards=3, workers=3
        )
        assert serial.kpis.to_dict() == pooled.kpis.to_dict()


# ----------------------------------------------------------------------
# Metrics + SLO namespace
# ----------------------------------------------------------------------


class TestTuningObservability:
    def test_registration_is_idempotent_and_rendered(self):
        from repro.observability.metrics import MetricsRegistry
        from repro.observability.openmetrics import render_openmetrics

        registry = MetricsRegistry()
        register_tuning_metrics(registry, window_s=900)
        register_tuning_metrics(registry, window_s=900)
        body = render_openmetrics(registry)
        for needle in (
            "tuning_promotions",
            "tuning_demotions",
            "tuning_bank_regret",
            "tuning_bank_share",
        ):
            assert needle in body

    def test_tuning_slos_fire_on_their_series(self):
        from repro.observability.metrics import MetricsRegistry
        from repro.observability.slo import SloMonitor, tuning_slos

        registry = MetricsRegistry()
        register_tuning_metrics(registry, window_s=900)
        monitor = SloMonitor(registry, tuning_slos(fast_window_s=900))
        monitor.maybe_evaluate(0)
        registry.counter_series("tuning.demotions.window").inc(100)
        monitor.maybe_evaluate(2000)
        assert monitor.ledger.is_firing("tuner_demotion")
        registry.histogram_series("tuning.bank.regret.window").observe(2100, 1.0)
        registry.histogram_series("tuning.bank.regret.window").observe(2200, 1.0)
        monitor.maybe_evaluate(4000)
        assert monitor.ledger.is_firing("bank_regret_p95")

    def test_bank_policies_constant(self):
        assert BANK_POLICIES == ("sliding", "hybrid_histogram", "survival")
