"""Fault plans: the declarative half of the fault-injection engine.

A :class:`FaultPlan` names the fault points that may fire during a run and
how each behaves: the per-consultation probability, an optional sim-time
schedule (only fire inside these windows), an optional cap on total fires,
and an optional latency payload for points that slow an operation down
instead of failing it.

Plans are plain JSON documents so chaos experiments can be described in a
file, checked into a repo, and replayed bit-for-bit::

    {
      "seed_note": "anything non-schema is ignored",
      "points": [
        {"point": "predictor.exception", "probability": 0.2},
        {"point": "resume.scan.unavailable", "probability": 0.1,
         "windows": [[86400, 172800]]},
        {"point": "predictor.latency", "probability": 0.5,
         "latency_s": 0.25, "max_fires": 100}
      ]
    }

See ``docs/resilience.md`` for the catalog of fault points the codebase
consults.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import FaultPlanError


@dataclass(frozen=True)
class FaultSpec:
    """Behaviour of one named fault point.

    ``probability`` is evaluated once per consultation of the point; an
    empty ``windows`` tuple means the point is armed for the whole run;
    ``max_fires`` caps how often the point fires (None = unlimited);
    ``latency_s`` is the payload for latency-spike points (how much
    simulated/recorded delay a fire adds).
    """

    point: str
    probability: float = 1.0
    windows: Tuple[Tuple[int, int], ...] = ()
    max_fires: Optional[int] = None
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.point:
            raise FaultPlanError("a fault spec needs a non-empty point name")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"fault point {self.point!r}: probability {self.probability} "
                "outside [0, 1]"
            )
        if self.max_fires is not None and self.max_fires < 0:
            raise FaultPlanError(
                f"fault point {self.point!r}: max_fires must be non-negative"
            )
        if self.latency_s < 0:
            raise FaultPlanError(
                f"fault point {self.point!r}: latency_s must be non-negative"
            )
        normalized = []
        for window in self.windows:
            try:
                start, end = window
            except (TypeError, ValueError):
                raise FaultPlanError(
                    f"fault point {self.point!r}: window {window!r} is not a "
                    "(start, end) pair"
                ) from None
            if end <= start:
                raise FaultPlanError(
                    f"fault point {self.point!r}: window {window!r} must have "
                    "end > start"
                )
            normalized.append((int(start), int(end)))
        object.__setattr__(self, "windows", tuple(normalized))

    def active(self, now: Optional[int]) -> bool:
        """Whether the point's schedule admits firing at sim-time ``now``.

        Points with no windows are always active; a consultation without a
        timestamp (``now is None``) ignores the schedule.
        """
        if not self.windows or now is None:
            return True
        return any(start <= now < end for start, end in self.windows)

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "point": self.point,
            "probability": self.probability,
        }
        if self.windows:
            doc["windows"] = [list(w) for w in self.windows]
        if self.max_fires is not None:
            doc["max_fires"] = self.max_fires
        if self.latency_s:
            doc["latency_s"] = self.latency_s
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "FaultSpec":
        if not isinstance(doc, dict) or "point" not in doc:
            raise FaultPlanError(f"fault spec {doc!r} needs a 'point' field")
        known = {"point", "probability", "windows", "max_fires", "latency_s"}
        unknown = set(doc) - known
        if unknown:
            raise FaultPlanError(
                f"fault spec for {doc['point']!r} has unknown fields {sorted(unknown)}"
            )
        return cls(
            point=str(doc["point"]),
            probability=float(doc.get("probability", 1.0)),
            windows=tuple(tuple(w) for w in doc.get("windows", ())),
            max_fires=doc.get("max_fires"),
            latency_s=float(doc.get("latency_s", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of fault specs, keyed by point name."""

    specs: Dict[str, FaultSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, spec in self.specs.items():
            if name != spec.point:
                raise FaultPlanError(
                    f"plan key {name!r} does not match spec point {spec.point!r}"
                )

    # -- construction ---------------------------------------------------

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        plan: Dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.point in plan:
                raise FaultPlanError(f"duplicate fault point {spec.point!r}")
            plan[spec.point] = spec
        return cls(plan)

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls({})

    @classmethod
    def uniform(
        cls,
        points: Iterable[str],
        probability: float,
        latency_s: float = 0.0,
        windows: Sequence[Tuple[int, int]] = (),
    ) -> "FaultPlan":
        """One spec per point, all at the same rate -- the shape the chaos
        fault-rate sweep uses."""
        return cls.of(
            *(
                FaultSpec(
                    point=point,
                    probability=probability,
                    latency_s=latency_s,
                    windows=tuple(windows),
                )
                for point in points
            )
        )

    # -- mapping surface ------------------------------------------------

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[str]:
        return iter(self.specs)

    def __contains__(self, point: str) -> bool:
        return point in self.specs

    def get(self, point: str) -> Optional[FaultSpec]:
        return self.specs.get(point)

    def points(self) -> List[str]:
        return list(self.specs)

    # -- JSON round trip ------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {"points": [spec.to_dict() for spec in self.specs.values()]}

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "FaultPlan":
        if not isinstance(doc, dict):
            raise FaultPlanError(f"fault plan document must be an object, got {doc!r}")
        entries = doc.get("points", [])
        if not isinstance(entries, list):
            raise FaultPlanError("'points' must be a list of fault specs")
        return cls.of(*(FaultSpec.from_dict(entry) for entry in entries))

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        try:
            document = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise FaultPlanError(f"cannot load fault plan from {path}: {exc}") from exc
        return cls.from_dict(document)
