"""Figure 11: frequency of resource allocation workflows.

The paper varies the period of the proactive resume operation (1, 5, 10,
15 minutes) and box-plots the number of databases pre-warmed per iteration:
the maximum grows from 29 to 406 with the period, which is why production
runs the operation every minute (keeping batches under ~100).  The white
boxes are the reactive policy's resume volume per interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import BoxPlotSummary, box_plot_summary, format_table
from repro.config import DEFAULT_CONFIG
from repro.experiments.common import (
    BENCH_SCALE,
    ExperimentScale,
    region_fleet,
    sweep_map,
)
from repro.parallel import SweepExecutor
from repro.simulation.region import simulate_region
from repro.types import SECONDS_PER_MINUTE
from repro.workload.regions import RegionPreset

MIN = SECONDS_PER_MINUTE

#: The x-axis of Figures 11-12: operation period in minutes.
PERIOD_MINUTES = (1, 5, 10, 15)


@dataclass(frozen=True)
class FrequencyRow:
    period_min: int
    proactive: BoxPlotSummary
    reactive: BoxPlotSummary


@dataclass(frozen=True)
class Fig11Result:
    by_period: List[FrequencyRow]

    def rows(self) -> List[Dict[str, object]]:
        return [
            {
                "period_min": row.period_min,
                "proactive_max": row.proactive.maximum,
                "proactive_median": row.proactive.median,
                "reactive_max": row.reactive.maximum,
                "reactive_median": row.reactive.median,
            }
            for row in self.by_period
        ]

    def table(self) -> str:
        rows = []
        for row in self.by_period:
            rows.append(
                [
                    row.period_min,
                    row.proactive.median,
                    row.proactive.q3,
                    row.proactive.maximum,
                    row.reactive.median,
                    row.reactive.maximum,
                ]
            )
        return format_table(
            [
                "period (min)",
                "proactive med",
                "proactive q3",
                "proactive max",
                "reactive med",
                "reactive max",
            ],
            rows,
            title=(
                "Figure 11: databases resumed per operation iteration "
                "[paper: proactive max grows 29 -> 406 from 1 to 15 min; "
                "proactive roughly doubles the reactive volume]"
            ),
        )


def _fig11_task(context: Tuple, item: Tuple[str, Optional[int]]):
    """One Figure 11 simulation, worker-side.

    The reactive baseline runs once and returns its per-interval resume
    buckets for every period; each proactive task reruns the policy with
    one operation period and returns the pre-warm batch sizes.  Only the
    small per-row summaries cross the process boundary, never the full
    simulation result.
    """
    preset, scale, period_minutes = context
    kind, minutes = item
    traces = region_fleet(preset, scale)
    settings = scale.settings()
    if kind == "reactive":
        result = simulate_region(traces, "reactive", DEFAULT_CONFIG, settings)
        return {
            m: result.workflow_counts_per_interval("reactive_resume", m * MIN)
            for m in period_minutes
        }
    config = DEFAULT_CONFIG.with_overrides(resume_operation_period_s=minutes * MIN)
    return simulate_region(
        traces, "proactive", config, settings
    ).prewarm_batch_sizes()


def run_fig11(
    scale: ExperimentScale = BENCH_SCALE,
    preset: RegionPreset = RegionPreset.EU1,
    period_minutes: Sequence[int] = PERIOD_MINUTES,
    executor: Optional[SweepExecutor] = None,
    workers: Optional[int] = None,
) -> Fig11Result:
    """For each operation period, rerun the proactive policy with that
    period and box-plot the per-iteration pre-warm batch; the reactive
    baseline's resumes are bucketed on the same interval.  The baseline
    and every per-period rerun fan out through the sweep executor."""
    period_minutes = tuple(period_minutes)
    items = [("reactive", None)]
    items += [("proactive", minutes) for minutes in period_minutes]
    results = sweep_map(
        _fig11_task, (preset, scale, period_minutes), items, executor, workers
    )
    reactive_buckets = results[0]
    out: List[FrequencyRow] = []
    for minutes, batches in zip(period_minutes, results[1:]):
        out.append(
            FrequencyRow(
                period_min=minutes,
                proactive=box_plot_summary(batches),
                reactive=box_plot_summary(reactive_buckets[minutes]),
            )
        )
    return Fig11Result(out)
