"""Online adaptation: live knob tuning + the per-database predictor bank.

Replaces Section 8's offline monthly grid sweep (ROADMAP open item 2)
with two cooperating online subsystems:

- :mod:`repro.tuning.controller` -- a successive-halving knob tuner with
  the paper's static config as a guarded incumbent, journaled through
  the durable control plane;
- :mod:`repro.tuning.bank` -- a per-database :class:`PredictorBank`
  selecting online between the sliding-window detector, a hybrid
  histogram policy, and a survival-style idle model, scored by rolling
  prediction regret.

The windowed driver that binds them to simulated fleets lives in
:mod:`repro.tuning.driver` (imported explicitly to keep this package
importable from the simulation layer without a cycle).
"""

from repro.tuning.bank import (
    BANK_POLICIES,
    BankSettings,
    PredictorBank,
    hybrid_histogram_predict,
    survival_predict,
)
from repro.tuning.candidates import (
    TUNABLE_KNOBS,
    candidate_population,
    default_candidates,
    validate_knob_candidates,
)
from repro.tuning.controller import (
    OnlineKnobTuner,
    TunerSettings,
    TuningDecision,
)
from repro.tuning.metrics import TUNING_METRICS, register_tuning_metrics

__all__ = [
    "TUNING_METRICS",
    "register_tuning_metrics",
    "BANK_POLICIES",
    "BankSettings",
    "PredictorBank",
    "hybrid_histogram_predict",
    "survival_predict",
    "TUNABLE_KNOBS",
    "candidate_population",
    "default_candidates",
    "validate_knob_candidates",
    "OnlineKnobTuner",
    "TunerSettings",
    "TuningDecision",
]
