"""Proactive auto-scale in small increments of capacity.

Future-work direction (1) of the paper: "Going forward, we plan to
auto-scale the resources in small increments of capacity to better
accommodate the current resource demand for each database" -- the binary
resume/pause problem generalised to multi-level demand (vCores).

* :mod:`repro.autoscale.demand` -- per-database multi-level demand traces
  derived from activity sessions.
* :mod:`repro.autoscale.scaler` -- a reactive scaler (tracks demand with a
  reaction lag: throttles on spikes) and a proactive scaler (per
  time-of-day demand envelope over the history, the Algorithm 4 idea
  lifted from binary logins to capacity levels).
* :mod:`repro.autoscale.kpi` -- throttled vs over-provisioned core-seconds.
"""

from repro.autoscale.demand import CapacityTrace, capacity_from_activity
from repro.autoscale.scaler import (
    ProactiveScaler,
    ReactiveScaler,
    ScalerEvaluation,
    evaluate_scaler,
)

__all__ = [
    "CapacityTrace",
    "capacity_from_activity",
    "ReactiveScaler",
    "ProactiveScaler",
    "evaluate_scaler",
    "ScalerEvaluation",
]
