"""Tests for the SQL lexer and parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sqlengine import ast
from repro.sqlengine.lexer import TokenType, tokenize
from repro.sqlengine.parser import parse


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_dotted_identifier(self):
        tokens = tokenize("sys.pause_resume_history")
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "sys.pause_resume_history"

    def test_param(self):
        tokens = tokenize("@now")
        assert tokens[0].type is TokenType.PARAM
        assert tokens[0].value == "now"

    def test_empty_param_rejected(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("@ 5")

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].type is TokenType.INTEGER
        assert tokens[1].type is TokenType.FLOAT

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_two_char_operators(self):
        tokens = tokenize("<= >= <> !=")
        assert [t.value for t in tokens[:-1]] == ["<=", ">=", "<>", "!="]

    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT -- comment\n 1")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "1"]

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT ;")

    def test_eof_token_terminates(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestParser:
    def test_select_star(self):
        statement = parse("SELECT * FROM t")
        assert isinstance(statement, ast.Select)
        assert statement.items[0].star
        assert statement.table == "t"

    def test_select_with_where_and_params(self):
        statement = parse(
            "SELECT a, b FROM t WHERE a = @x AND b < @y + 1"
        )
        assert len(statement.items) == 2
        conjuncts = statement.where
        assert isinstance(conjuncts, ast.BinaryOp) and conjuncts.op == "AND"

    def test_select_alias(self):
        statement = parse("SELECT MIN(a) AS lo FROM t")
        assert statement.items[0].alias == "lo"
        assert isinstance(statement.items[0].expression, ast.Aggregate)

    def test_select_order_limit(self):
        statement = parse("SELECT a FROM t ORDER BY a DESC, b LIMIT 5")
        assert statement.order_by == (
            ast.OrderItem("a", True),
            ast.OrderItem("b", False),
        )
        assert statement.limit == 5

    def test_select_constant_without_table(self):
        statement = parse("SELECT 1 + 2 AS three")
        assert statement.table is None

    def test_count_star(self):
        statement = parse("SELECT COUNT(*) FROM t")
        aggregate = statement.items[0].expression
        assert aggregate.func == "COUNT" and aggregate.argument is None

    def test_insert(self):
        statement = parse("INSERT INTO t (a, b) VALUES (@x, 2)")
        assert isinstance(statement, ast.Insert)
        assert statement.columns == ("a", "b")
        assert statement.values[0] == ast.Param("x")

    def test_insert_arity_mismatch(self):
        with pytest.raises(SqlSyntaxError):
            parse("INSERT INTO t (a, b) VALUES (1)")

    def test_delete(self):
        statement = parse("DELETE FROM t WHERE a < 5")
        assert isinstance(statement, ast.Delete)
        assert statement.where is not None

    def test_update(self):
        statement = parse("UPDATE t SET a = 1, b = @v WHERE c = 'x'")
        assert isinstance(statement, ast.Update)
        assert [a.column for a in statement.assignments] == ["a", "b"]

    def test_create_table(self):
        statement = parse(
            "CREATE TABLE t (id BIGINT PRIMARY KEY, name TEXT NOT NULL, score FLOAT)"
        )
        assert isinstance(statement, ast.CreateTable)
        assert statement.columns[0].primary_key
        assert statement.columns[1].not_null
        assert not statement.columns[2].not_null

    def test_create_index(self):
        statement = parse("CREATE INDEX ON t (col)")
        assert isinstance(statement, ast.CreateIndex)
        assert statement.column == "col"

    def test_is_null(self):
        statement = parse("SELECT a FROM t WHERE a IS NOT NULL")
        assert isinstance(statement.where, ast.IsNull)
        assert statement.where.negated

    def test_operator_precedence(self):
        statement = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        # AND binds tighter than OR.
        assert statement.where.op == "OR"
        assert statement.where.right.op == "AND"

    def test_arithmetic_precedence(self):
        statement = parse("SELECT 1 + 2 * 3 AS v")
        expression = statement.items[0].expression
        assert expression.op == "+"
        assert expression.right.op == "*"

    def test_parenthesized_expression(self):
        statement = parse("SELECT (1 + 2) * 3 AS v")
        assert statement.items[0].expression.op == "*"

    def test_unary_minus(self):
        statement = parse("SELECT -5 AS v")
        assert isinstance(statement.items[0].expression, ast.UnaryOp)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM t garbage garbage")

    def test_unsupported_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse("DROP TABLE t")

    def test_missing_identifier(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM WHERE a = 1")
