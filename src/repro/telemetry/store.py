"""An append-only, partitioned telemetry store (Cosmos substitute).

Events are partitioned by (component, day) like a big-data store's
date-partitioned streams; scans can prune partitions by component and time
range.  JSONL export/import stands in for the durable storage layer.
"""

from __future__ import annotations

import bisect
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.telemetry.events import Component, TelemetryEvent
from repro.types import SECONDS_PER_DAY


class TelemetryStore:
    """In-memory partitioned event store with pruned range scans."""

    def __init__(self) -> None:
        # (component, day) -> list of events sorted by time.
        self._partitions: Dict[Tuple[Component, int], List[TelemetryEvent]] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def append(self, event: TelemetryEvent) -> None:
        key = (event.component, event.time // SECONDS_PER_DAY)
        partition = self._partitions.setdefault(key, [])
        if partition and event.time < partition[-1].time:
            # Out-of-order arrival: insert at the right offset.
            times = [e.time for e in partition]
            partition.insert(bisect.bisect_right(times, event.time), event)
        else:
            partition.append(event)
        self._count += 1

    def extend(self, events: Iterable[TelemetryEvent]) -> int:
        n = 0
        for event in events:
            self.append(event)
            n += 1
        return n

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------

    def scan(
        self,
        component: Optional[Component] = None,
        start: Optional[int] = None,
        end: Optional[int] = None,
        database_id: Optional[str] = None,
    ) -> Iterator[TelemetryEvent]:
        """Events in time order, pruned by component and day partition."""
        first_day = 0 if start is None else start // SECONDS_PER_DAY
        keys = sorted(
            (
                key
                for key in self._partitions
                if (component is None or key[0] is component)
                and key[1] >= first_day
                and (end is None or key[1] <= end // SECONDS_PER_DAY)
            ),
            key=lambda k: (k[0].value, k[1]),
        )
        merged: List[TelemetryEvent] = []
        for key in keys:
            merged.extend(self._partitions[key])
        merged.sort(key=lambda e: e.time)
        for event in merged:
            if start is not None and event.time < start:
                continue
            if end is not None and event.time >= end:
                continue
            if database_id is not None and event.database_id != database_id:
                continue
            yield event

    def partition_counts(self) -> Dict[Tuple[str, int], int]:
        """(component name, day) -> event count; monitoring surface."""
        return {
            (component.value, day): len(events)
            for (component, day), events in self._partitions.items()
        }

    # ------------------------------------------------------------------
    # Retention and durability
    # ------------------------------------------------------------------

    def trim_before(self, cutoff: int) -> int:
        """Drop whole partitions older than the cutoff day; returns the
        number of events removed (retention policy)."""
        cutoff_day = cutoff // SECONDS_PER_DAY
        doomed = [key for key in self._partitions if key[1] < cutoff_day]
        removed = 0
        for key in doomed:
            removed += len(self._partitions.pop(key))
        self._count -= removed
        return removed

    def export_jsonl(self, path: Path) -> int:
        """Write every event as one JSON line; returns the count."""
        path = Path(path)
        n = 0
        with path.open("w", encoding="utf-8") as handle:
            for event in self.scan():
                handle.write(event.to_json())
                handle.write("\n")
                n += 1
        return n

    @classmethod
    def import_jsonl(cls, path: Path) -> "TelemetryStore":
        store = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    store.append(TelemetryEvent.from_json(line))
        return store
