"""Planner: choose index range scans for conjunctive predicates.

The paper's complexity analysis assumes the range queries of Algorithms 3-4
run through the clustered B-tree index in O(log n + m).  The planner makes
that happen: it splits the WHERE clause into AND-ed conjuncts, extracts
constant lower/upper bounds on the clustered key (or on a secondary indexed
column), and leaves the remaining conjuncts as a residual filter.

Bounds may contain ``@params`` and arithmetic, so they are kept as
expressions and evaluated at execution time after parameter binding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sqlengine import ast

#: Comparison operators usable as index bounds, with their mirror image for
#: the ``literal OP column`` orientation.
_MIRROR = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


@dataclass(frozen=True)
class Bound:
    """One side of a key range: a constant expression plus inclusivity."""

    expression: ast.Expression
    inclusive: bool


@dataclass(frozen=True)
class ScanPlan:
    """How to produce candidate rows for a statement.

    ``index_column`` is None for a full scan; otherwise the clustered key
    (``kind == 'clustered'``) or a secondary indexed column
    (``kind == 'secondary'``).  ``residual`` is the conjunction of WHERE
    conjuncts not absorbed into the bounds (None means no filter).
    """

    table: str
    kind: str  # 'full' | 'clustered' | 'secondary'
    index_column: Optional[str] = None
    lower: Optional[Bound] = None
    upper: Optional[Bound] = None
    residual: Optional[ast.Expression] = None


def split_conjuncts(expression: Optional[ast.Expression]) -> List[ast.Expression]:
    """Flatten a WHERE tree into its top-level AND-ed conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, ast.BinaryOp) and expression.op == "AND":
        return split_conjuncts(expression.left) + split_conjuncts(expression.right)
    return [expression]


def _is_constant(expression: ast.Expression) -> bool:
    """Whether the expression references no columns (safe as an index bound)."""
    if isinstance(expression, (ast.Literal, ast.Param)):
        return True
    if isinstance(expression, ast.BinaryOp):
        return _is_constant(expression.left) and _is_constant(expression.right)
    if isinstance(expression, ast.UnaryOp):
        return _is_constant(expression.operand)
    return False


def _as_column_bound(
    conjunct: ast.Expression, column: str
) -> Optional[Tuple[str, ast.Expression]]:
    """If ``conjunct`` is ``column OP constant`` (either orientation), return
    (normalized_op, constant_expression) with the column on the left."""
    if not isinstance(conjunct, ast.BinaryOp) or conjunct.op not in _MIRROR:
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(left, ast.ColumnRef) and left.name == column and _is_constant(right):
        return conjunct.op, right
    if isinstance(right, ast.ColumnRef) and right.name == column and _is_constant(left):
        return _MIRROR[conjunct.op], left
    return None


def _combine(conjuncts: List[ast.Expression]) -> Optional[ast.Expression]:
    if not conjuncts:
        return None
    combined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        combined = ast.BinaryOp("AND", combined, conjunct)
    return combined


def plan_scan(
    table: str,
    where: Optional[ast.Expression],
    primary_key: str,
    secondary_columns: List[str],
) -> ScanPlan:
    """Build the cheapest scan for ``where`` given the available indexes.

    Preference order: clustered-key bounds, then any secondary index with
    bounds, then a full scan.  OR-rooted predicates are never split, so they
    always fall through to a residual filter over a full scan -- correct,
    just not index-accelerated (matching the engine's modest scope).
    """
    conjuncts = split_conjuncts(where)
    for kind, column in [("clustered", primary_key)] + [
        ("secondary", c) for c in secondary_columns
    ]:
        lower: Optional[Bound] = None
        upper: Optional[Bound] = None
        residual: List[ast.Expression] = []
        for conjunct in conjuncts:
            if (
                isinstance(conjunct, ast.Between)
                and not conjunct.negated
                and isinstance(conjunct.operand, ast.ColumnRef)
                and conjunct.operand.name == column
                and _is_constant(conjunct.low)
                and _is_constant(conjunct.high)
                and lower is None
                and upper is None
            ):
                lower = Bound(conjunct.low, inclusive=True)
                upper = Bound(conjunct.high, inclusive=True)
                continue
            bound = _as_column_bound(conjunct, column)
            if bound is None:
                residual.append(conjunct)
                continue
            op, constant = bound
            if op == "=":
                # Equality sets both bounds; if either side is already
                # constrained, re-check the whole conjunct in the residual
                # instead of merging bounds.
                if lower is None and upper is None:
                    lower = Bound(constant, inclusive=True)
                    upper = Bound(constant, inclusive=True)
                else:
                    residual.append(conjunct)
            elif op in (">", ">="):
                if lower is None:
                    lower = Bound(constant, inclusive=(op == ">="))
                else:
                    residual.append(conjunct)
            else:  # '<' or '<='
                if upper is None:
                    upper = Bound(constant, inclusive=(op == "<="))
                else:
                    residual.append(conjunct)
        if lower is not None or upper is not None:
            return ScanPlan(
                table=table,
                kind=kind,
                index_column=column,
                lower=lower,
                upper=upper,
                residual=_combine(residual),
            )
    return ScanPlan(table=table, kind="full", residual=_combine(conjuncts))
