"""Parallel sweep execution for training and experiment drivers.

The paper's Section 8 pipeline re-tunes the ProRP knobs per region over
hundreds of thousands of databases every month -- an embarrassingly
parallel fan-out of independent candidate evaluations.  This package
provides the execution layer for that fan-out:

* :mod:`repro.parallel.base` -- the :class:`SweepExecutor` interface,
  per-run :class:`SweepStats` telemetry, and the ``chunked`` /
  ``merge_ordered`` primitives;
* :mod:`repro.parallel.serial` -- the deterministic in-process reference
  backend (the default);
* :mod:`repro.parallel.multiprocess` -- a process-pool backend that ships
  the shared fleet to each worker once and merges results back in
  submission order, so reports are byte-identical to the serial run.

``resolve_executor`` is the single entry point call sites use to turn
``executor=`` / ``workers=`` parameters into a backend, degrading to
serial when the pool machinery is unavailable.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.parallel.base import (
    SweepExecutor,
    SweepStats,
    TaskRecord,
    chunked,
    merge_ordered,
)
from repro.parallel.serial import SerialExecutor

__all__ = [
    "SweepExecutor",
    "SweepStats",
    "TaskRecord",
    "SerialExecutor",
    "MultiprocessExecutor",
    "chunked",
    "merge_ordered",
    "resolve_executor",
]


def resolve_executor(
    executor: Optional[SweepExecutor] = None, workers: Optional[int] = None
) -> SweepExecutor:
    """Pick the sweep backend for an ``executor=`` / ``workers=`` pair.

    An explicit ``executor`` wins.  ``workers > 1`` requests the
    multiprocess backend; if that backend cannot be imported (stripped
    stdlib, restricted platform) the sweep degrades to serial with a
    warning rather than failing.  Everything else -- ``workers`` of
    ``None``, 0, or 1 -- is the deterministic serial default.
    """
    if executor is not None:
        return executor
    if workers is not None and workers > 1:
        try:
            from repro.parallel.multiprocess import MultiprocessExecutor

            return MultiprocessExecutor(workers=workers)
        except ImportError as exc:  # pragma: no cover - platform-dependent
            warnings.warn(
                f"multiprocess sweep backend unavailable ({exc}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
    return SerialExecutor()


def __getattr__(name: str):
    # Import the pool backend lazily so ``import repro.parallel`` works
    # even where multiprocessing primitives are unavailable.
    if name == "MultiprocessExecutor":
        from repro.parallel.multiprocess import MultiprocessExecutor

        return MultiprocessExecutor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
