"""Per-database policy executors.

Each actor replays one database's activity trace (session start/end events)
through a resource allocation policy, driving the Figure 4 lifecycle,
maintaining the history store, requesting capacity from the cluster, and
writing the outcome accounting.

:class:`ProactiveActor` implements Algorithm 1 end to end: history
maintenance (Algorithms 2-3), next-activity prediction (Algorithm 4), the
idle decisions, and the pre-warm entry point invoked by the proactive
resume operation (Algorithm 5).  :class:`ReactiveActor` is the Section 2.2
baseline: logical pause on idle, physical pause after ``l``, reactive
resume on login.
"""

from __future__ import annotations

import time as _time
from typing import Optional, Sequence

from repro.cluster import Cluster
from repro.config import ProRPConfig
from repro.core.fast_predictor import FastPredictor
from repro.core.lifecycle import Lifecycle, LifecycleState, LifecycleTransition
from repro.core.policy import (
    IdleDecision,
    decide_after_logical_pause,
    decide_on_idle,
    logical_pause_wake_time,
    prediction_expired,
    reactive_wake_time,
)
from repro.core.prediction_cache import PredictionCache
from repro.core.predictor import LATENCY_FAULT_POINT, predict_next_activity
from repro.errors import FaultInjectedError, SimulationError
from repro.faults.resilience import CircuitBreaker
from repro.faults.runtime import FAULTS
from repro.simulation.engine import EventQueue, Timer
from repro.simulation.results import DatabaseOutcome
from repro.storage.history import HistoryStore
from repro.storage.metadata import DatabaseState, MetadataStore
from repro.types import ActivityTrace, EventType, PredictedActivity, Session

#: Fault point consulted once per prediction refresh: the predictor backend
#: raises (store unreachable, procedure timeout).  Repeated fires trip the
#: predictor circuit breaker, which degrades the policy to reactive mode --
#: the paper's own fallback for databases without a usable history (S4).
PREDICTOR_FAULT_POINT = "predictor.exception"


class _BaseActor:
    """Trace replay, cluster bookkeeping, and accounting shared by both
    policies."""

    def __init__(
        self,
        trace: ActivityTrace,
        queue: EventQueue,
        cluster: Cluster,
        metadata: MetadataStore,
        outcome: DatabaseOutcome,
        config: ProRPConfig,
        sim_start: int,
        sim_end: int,
        maintenance: Sequence[Session] = (),
    ):
        self.trace = trace
        self.queue = queue
        self.cluster = cluster
        self.metadata = metadata
        self.outcome = outcome
        self.config = config
        self.sim_start = sim_start
        self.sim_end = sim_end
        #: System maintenance operations (backups, updates): they resume
        #: resources when needed but are excluded from the history and from
        #: the customer KPIs (Section 3.3).
        self.maintenance: Sequence[Session] = tuple(maintenance)

        self.database_id = trace.database_id
        self.lifecycle = Lifecycle(self.database_id, record_log=False)
        self._session_index = 0
        self._maintenance_index = 0
        self._maintenance_until = 0
        self._maintenance_from_physical = False
        self._wake_timer: Optional[Timer] = None
        self._active_since: Optional[int] = None
        self._pause_start: Optional[int] = None
        #: Why the current logical pause holds resources: None for the
        #: policy's own pause, "prewarm" after Algorithm 5, "maintenance"
        #: while a system operation needs the database.
        self._pause_origin: Optional[str] = None
        self._resume_started_at: Optional[int] = None
        self._deferred_session_end = False
        self._holds_slot = False
        #: When the customer last went idle (the paper's pauseStart); used
        #: by policy decisions even when maintenance segments the pause.
        self._idle_since: Optional[int] = None
        #: True while the policy runs reactively because of an injected
        #: fault (predictor breaker open / failed refresh) rather than by
        #: its own decision; reactive logins in this state are attributed
        #: to faults in the KPI layer.
        self._fault_degraded = False

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Register the database, set its state at ``sim_start``, and
        schedule its first trace event."""
        self.cluster.place(self.database_id)
        self.metadata.register(
            self.database_id,
            created_at=self.trace.created_at,
            node_id=self.cluster.node_of(self.database_id).node_id,
        )
        self._schedule_first_maintenance()
        sessions = self.trace.sessions
        # Skip sessions entirely before the simulation window.
        while (
            self._session_index < len(sessions)
            and sessions[self._session_index].end <= self.sim_start
        ):
            self._session_index += 1
        if self._session_index >= len(sessions):
            self._enter_initial_physical_pause()
            return
        current = sessions[self._session_index]
        if self.trace.created_at > self.sim_start:
            # The database does not exist yet: it comes to life physically
            # paused and its first login resumes it reactively (Section 4).
            self._enter_initial_physical_pause()
            self.queue.schedule_oneshot(current.start, self._on_session_start)
            return
        if current.start <= self.sim_start:
            # Mid-session at simulation start: resumed and active.
            self._acquire_slot()
            self.metadata.set_state(self.database_id, DatabaseState.RESUMED)
            self._active_since = self.sim_start
            self.queue.schedule_oneshot(
                min(current.end, self.sim_end), self._on_session_end
            )
        else:
            # Idle at simulation start: settle through the policy's idle
            # path so the state at eval time is policy-consistent.
            self._enter_initial_idle()
            self.queue.schedule_oneshot(current.start, self._on_session_start)

    def _enter_initial_physical_pause(self) -> None:
        self.metadata.set_state(self.database_id, DatabaseState.PHYSICAL_PAUSE)
        self.lifecycle.state = LifecycleState.PHYSICALLY_PAUSED

    # ------------------------------------------------------------------
    # System maintenance operations (Section 3.3)
    # ------------------------------------------------------------------

    def _schedule_first_maintenance(self) -> None:
        while (
            self._maintenance_index < len(self.maintenance)
            and self.maintenance[self._maintenance_index].end <= self.sim_start
        ):
            self._maintenance_index += 1
        if self._maintenance_index < len(self.maintenance):
            op = self.maintenance[self._maintenance_index]
            if op.start < self.sim_end:
                self.queue.schedule_oneshot(
                    max(op.start, self.sim_start), self._on_maintenance_start
                )

    def _on_maintenance_start(self, now: int) -> None:
        """A system operation needs the database: hold (or bring up)
        resources until it completes.  No history event, no login -- the
        paper's tracker records customer activity only."""
        op = self.maintenance[self._maintenance_index]
        self._maintenance_index += 1
        if self._maintenance_index < len(self.maintenance):
            nxt = self.maintenance[self._maintenance_index]
            if nxt.start < self.sim_end:
                self.queue.schedule_oneshot(nxt.start, self._on_maintenance_start)
        self._maintenance_until = max(
            self._maintenance_until, min(op.end, self.sim_end)
        )
        state = self.lifecycle.state
        if state is LifecycleState.PHYSICALLY_PAUSED:
            self._acquire_slot()
            self.lifecycle.apply(LifecycleTransition.MAINTENANCE_RESUME, now)
            self.metadata.set_state(self.database_id, DatabaseState.LOGICAL_PAUSE)
            self.outcome.record_workflow(now, "maintenance_resume")
            self._pause_start = now
            self._pause_origin = "maintenance"
            self._maintenance_from_physical = True
            self._schedule_wake(self._maintenance_until)
        elif state is LifecycleState.LOGICALLY_PAUSED:
            # Resources are already up; just make sure no wake-up reclaims
            # them while the operation runs.
            if (
                self._wake_timer is not None
                and self._wake_timer.time < self._maintenance_until
            ):
                self._schedule_wake(self._maintenance_until)
        # RESUMED / RESUMING: the operation rides on customer activity.

    def _maintenance_hold(self, now: int) -> bool:
        """True when a wake-up fired while an operation still runs: the
        caller must keep the logical pause and retry at the operation end."""
        if now < self._maintenance_until:
            self._schedule_wake(self._maintenance_until)
            return True
        return False

    def _close_maintenance_pause(self, now: int) -> bool:
        """At a wake after maintenance: book the held time.  Returns True
        when the database should go straight back to physical pause (it was
        physically paused before the operation resumed it)."""
        if self._pause_origin != "maintenance":
            return False
        from_physical = self._maintenance_from_physical
        self.outcome.add_idle(self._pause_start, now, "maintenance")
        if from_physical:
            self._pause_start = None
            self._pause_origin = None
            self._maintenance_from_physical = False
            return True
        # The customer went idle during the operation: continue as the
        # policy's own pause (a fresh accounting segment, but policy
        # decisions keep using the original idle moment in _idle_since).
        self._pause_start = now
        self._pause_origin = None
        self._maintenance_from_physical = False
        return False

    def _begin_idle(self, now: int) -> bool:
        """Mark the customer idle; when a maintenance operation is running,
        hold the resources until it completes and defer the policy's idle
        decision to the wake-up.  Returns True when held."""
        self._idle_since = now
        if now >= self._maintenance_until:
            return False
        if not self._holds_slot:
            self._acquire_slot()
        self.lifecycle.apply(LifecycleTransition.IDLE_TO_LOGICAL, now)
        self.metadata.set_state(self.database_id, DatabaseState.LOGICAL_PAUSE)
        self._pause_start = now
        self._pause_origin = "maintenance"
        self._schedule_wake(self._maintenance_until)
        return True

    def _enter_initial_idle(self) -> None:
        """Policy-specific settling for databases idle at ``sim_start``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Cluster slot bookkeeping
    # ------------------------------------------------------------------

    def _acquire_slot(self) -> int:
        """Take a compute slot; returns the allocation workflow latency."""
        if self._holds_slot:
            raise SimulationError(f"{self.database_id}: slot already held")
        outcome = self.cluster.allocate(self.database_id)
        self._holds_slot = True
        self.metadata.set_node(self.database_id, outcome.node_id)
        return outcome.latency_s

    def _release_slot(self) -> None:
        if not self._holds_slot:
            raise SimulationError(f"{self.database_id}: no slot to release")
        self.cluster.release(self.database_id)
        self._holds_slot = False

    # ------------------------------------------------------------------
    # Trace events
    # ------------------------------------------------------------------

    def _current_session(self):
        return self.trace.sessions[self._session_index]

    def _schedule_next_session(self) -> None:
        self._session_index += 1
        if self._session_index < len(self.trace.sessions):
            nxt = self.trace.sessions[self._session_index]
            if nxt.start < self.sim_end:
                self.queue.schedule_oneshot(nxt.start, self._on_session_start)

    def _on_session_start(self, now: int) -> None:
        self._record_history(now, EventType.ACTIVITY_START)
        self._idle_since = None
        state = self.lifecycle.state
        if state is LifecycleState.LOGICALLY_PAUSED:
            self._cancel_wake()
            self.lifecycle.apply(LifecycleTransition.LOGICAL_TO_RESUMED, now)
            self.metadata.set_state(self.database_id, DatabaseState.RESUMED)
            self.outcome.record_login(now, served=True)
            self._settle_idle_interval(now, resumed_by_login=True)
            self._active_since = now
            end = min(self._current_session().end, self.sim_end)
            self.queue.schedule_oneshot(end, self._on_session_end)
        elif state is LifecycleState.PHYSICALLY_PAUSED:
            latency = self._acquire_slot()
            self.lifecycle.apply(LifecycleTransition.REACTIVE_RESUME_START, now)
            self.metadata.set_state(self.database_id, DatabaseState.RESUMING)
            self.outcome.record_login(
                now, served=False, faulted=self._fault_degraded
            )
            self.outcome.record_workflow(now, "reactive_resume")
            self._resume_started_at = now
            self._deferred_session_end = False
            self.queue.schedule_oneshot(now + latency, self._on_resume_complete)
            end = min(self._current_session().end, self.sim_end)
            self.queue.schedule_oneshot(end, self._on_session_end)
        elif state is LifecycleState.RESUMING:
            # A new session while the previous reactive resume is still in
            # flight: resources are still unavailable.
            self.outcome.record_login(
                now, served=False, faulted=self._fault_degraded
            )
            self._resume_started_at = now
            self._deferred_session_end = False
            end = min(self._current_session().end, self.sim_end)
            self.queue.schedule_oneshot(end, self._on_session_end)
        else:
            raise SimulationError(
                f"{self.database_id}: session start at t={now} while already "
                f"{state.value}"
            )

    def _on_session_end(self, now: int) -> None:
        self._record_history(now, EventType.ACTIVITY_END)
        state = self.lifecycle.state
        if state is LifecycleState.RESUMED:
            if self._active_since is not None:
                self.outcome.add_used(self._active_since, now)
                self._active_since = None
            self._schedule_next_session()
            self._handle_idle(now)
        elif state is LifecycleState.RESUMING:
            # Demand ended before the resume workflow completed.
            if self._resume_started_at is not None:
                self.outcome.add_unavailable(self._resume_started_at, now)
                self._resume_started_at = None
            self._deferred_session_end = True
            self._schedule_next_session()
        else:
            raise SimulationError(
                f"{self.database_id}: session end at t={now} in state {state.value}"
            )

    def _on_resume_complete(self, now: int) -> None:
        if self.lifecycle.state is not LifecycleState.RESUMING:
            return  # stale completion (e.g. past sim end clipping)
        self.lifecycle.apply(LifecycleTransition.REACTIVE_RESUME_COMPLETE, now)
        self.metadata.set_state(self.database_id, DatabaseState.RESUMED)
        if self._resume_started_at is not None:
            self.outcome.add_unavailable(self._resume_started_at, now)
            self._resume_started_at = None
        if self._deferred_session_end:
            # The customer already left: the database is idle on arrival of
            # its resources; run the idle path immediately.
            self._deferred_session_end = False
            self._handle_idle(now)
        else:
            self._active_since = now

    # ------------------------------------------------------------------
    # Idle accounting
    # ------------------------------------------------------------------

    def _settle_idle_interval(self, now: int, resumed_by_login: bool) -> None:
        """Close the open logical-pause interval and classify it."""
        if self._pause_start is None:
            return
        if self._pause_origin == "prewarm":
            cause = "correct_proactive" if resumed_by_login else "wrong_proactive"
            self.outcome.add_idle(self._pause_start, now, cause)
            self.outcome.record_proactive_outcome(now, correct=resumed_by_login)
        elif self._pause_origin == "maintenance":
            # System-held time: excluded from the policy's COGS breakdown.
            self.outcome.add_idle(self._pause_start, now, "maintenance")
        else:
            self.outcome.add_idle(self._pause_start, now, "logical_pause")
        self._pause_start = None
        self._pause_origin = None
        self._maintenance_from_physical = False

    def _cancel_wake(self) -> None:
        if self._wake_timer is not None:
            self._wake_timer.cancel()
            self._wake_timer = None

    def _schedule_wake(self, at: int) -> None:
        self._cancel_wake()
        at = max(at, self.queue.now + 1)
        if at < self.sim_end:
            self._wake_timer = self.queue.schedule(at, self._on_wake)

    def _enter_physical_pause(
        self, now: int, transition: LifecycleTransition, pred_start: int
    ) -> None:
        self.lifecycle.apply(transition, now)
        self.metadata.record_physical_pause(self.database_id, pred_start)
        self.outcome.record_workflow(now, "physical_pause")
        if self._holds_slot:
            self._release_slot()

    def finalize(self, sim_end: int) -> None:
        """Close any interval still open when the simulation ends so every
        database-second of the evaluation window is accounted for."""
        state = self.lifecycle.state
        if state is LifecycleState.RESUMED and self._active_since is not None:
            self.outcome.add_used(self._active_since, sim_end)
            self._active_since = None
        elif state is LifecycleState.LOGICALLY_PAUSED:
            # record_proactive_outcome/record_login filter on t < eval_end,
            # so a pre-warm unresolved at the boundary is (correctly) not
            # classified as wrong -- only its idle seconds are booked.
            self._settle_idle_interval(sim_end, resumed_by_login=False)
        elif state is LifecycleState.RESUMING and self._resume_started_at is not None:
            self.outcome.add_unavailable(self._resume_started_at, sim_end)
            self._resume_started_at = None

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------

    def _record_history(self, now: int, event_type: EventType) -> None:
        """Customer-activity tracking; the reactive baseline skips it."""

    def _handle_idle(self, now: int) -> None:
        raise NotImplementedError

    def _on_wake(self, now: int) -> None:
        raise NotImplementedError


class ReactiveActor(_BaseActor):
    """The current reactive policy (Section 2.2): logical pause on idle,
    physical pause after ``l`` time units, reactive resume on login."""

    def _enter_initial_idle(self) -> None:
        self._enter_initial_physical_pause()

    def _handle_idle(self, now: int) -> None:
        if self._begin_idle(now):
            return  # held by a running maintenance operation
        self.lifecycle.apply(LifecycleTransition.IDLE_TO_LOGICAL, now)
        self.metadata.set_state(self.database_id, DatabaseState.LOGICAL_PAUSE)
        self.outcome.record_workflow(now, "logical_pause")
        self._pause_start = now
        self._schedule_wake(reactive_wake_time(now, self.config.logical_pause_s))

    def _on_wake(self, now: int) -> None:
        self._wake_timer = None
        if self.lifecycle.state is not LifecycleState.LOGICALLY_PAUSED:
            return  # stale timer
        if self._maintenance_hold(now):
            return
        if self._close_maintenance_pause(now):
            # Physically paused before the operation: return there.
            self._enter_physical_pause(
                now, LifecycleTransition.LOGICAL_TO_PHYSICAL, pred_start=0
            )
            self._idle_since = None
            return
        idle_since = self._idle_since if self._idle_since is not None else now
        if now < idle_since + self.config.logical_pause_s:
            # Maintenance segmented the pause: wait out the remainder of l.
            self._schedule_wake(idle_since + self.config.logical_pause_s)
            return
        self._settle_idle_interval(now, resumed_by_login=False)
        self._enter_physical_pause(
            now, LifecycleTransition.LOGICAL_TO_PHYSICAL, pred_start=0
        )
        self._idle_since = None


class ProactiveActor(_BaseActor):
    """Algorithm 1, driven by predictions over the database's own history."""

    def __init__(
        self,
        trace: ActivityTrace,
        queue: EventQueue,
        cluster: Cluster,
        metadata: MetadataStore,
        outcome: DatabaseOutcome,
        config: ProRPConfig,
        sim_start: int,
        sim_end: int,
        history: Optional[HistoryStore] = None,
        fast_predictor: Optional[FastPredictor] = None,
        measure_prediction_latency: bool = False,
        maintenance: Sequence[Session] = (),
        collect_predictions: bool = False,
        prorp_outages: Sequence = (),
        breaker: Optional[CircuitBreaker] = None,
        prediction_cache: Optional[PredictionCache] = None,
        bank: Optional["PredictorBank"] = None,
        bank_key: Optional[str] = None,
    ):
        super().__init__(
            trace,
            queue,
            cluster,
            metadata,
            outcome,
            config,
            sim_start,
            sim_end,
            maintenance=maintenance,
        )
        self.history = history if history is not None else HistoryStore()
        #: Region-shared predictor bank (repro.tuning.bank); None keeps the
        #: paper's single sliding-window path.  A sliding-only bank is a
        #: pure delegate, byte-identical to None.
        self._bank = bank
        self._bank_key = bank_key if bank_key is not None else trace.database_id
        self._fast_predictor = fast_predictor
        self._measure_latency = measure_prediction_latency
        self._collect_predictions = collect_predictions
        self._prorp_outages = tuple(prorp_outages)
        #: Shared predictor circuit breaker (one per region under chaos):
        #: while open, every refresh degrades to reactive without touching
        #: the predictor at all.
        self._breaker = breaker
        #: Exact-key memo of the last prediction; the region seeds it from
        #: one batched predict_fleet call before actors start.
        self._prediction_cache = prediction_cache
        self.next_activity = PredictedActivity.none()
        self.old = False

    # ------------------------------------------------------------------
    # History + prediction plumbing
    # ------------------------------------------------------------------

    def _record_history(self, now: int, event_type: EventType) -> None:
        self.history.insert_history(now, event_type)
        if self._bank is not None and event_type is EventType.ACTIVITY_START:
            self._bank.observe_login(self._bank_key, now)

    def _prediction_config(self, now: int) -> ProRPConfig:
        """The Algorithm 4 configuration for this database right now: the
        fixed knob, or the per-database detected-seasonality variant."""
        if not self.config.auto_seasonality:
            return self.config
        from repro.core.seasonality import config_for_seasonality, detect_seasonality

        diagnosis = detect_seasonality(
            self.history.login_timestamps(), now, self.config.history_days
        )
        return config_for_seasonality(self.config, diagnosis.seasonality)

    def _prorp_down(self, now: int) -> bool:
        return any(start <= now < end for start, end in self._prorp_outages)

    def _refresh_prediction(self, now: int) -> None:
        """Algorithm 1 lines 8-9 / 24-25: trim history, re-predict."""
        if self._prorp_down(now):
            # Section 3.2 (Default to Reactive): with the proactive
            # components down, the database behaves exactly like a new one
            # -- logical pause on idle, physical pause after l, no
            # predictions, no pre-warms -- until ProRP comes back.
            self.old = False
            self.next_activity = PredictedActivity.none()
            return
        if self._breaker is not None and not self._breaker.allow(now):
            # Predictor breaker open after repeated failures: same reactive
            # fallback as above, without even touching the predictor, until
            # the recovery window half-opens the circuit.
            self.old = False
            self.next_activity = PredictedActivity.none()
            self._fault_degraded = True
            return
        self.old = self.history.delete_old_history(
            self.config.history_days, now
        ).old
        if not self.old:
            # A new database has no reliable prediction (Section 4).
            self.next_activity = PredictedActivity.none()
            self._fault_degraded = False
            return
        try:
            self._predict(now)
        except FaultInjectedError:
            if self._breaker is not None:
                self._breaker.record_failure(now)
            # This refresh degrades to reactive; the breaker decides
            # whether the next one even tries.
            self.old = False
            self.next_activity = PredictedActivity.none()
            self._fault_degraded = True
            return
        if self._breaker is not None:
            self._breaker.record_success(now)
        self._fault_degraded = False
        if self._collect_predictions:
            self.outcome.record_prediction(
                now,
                self.next_activity.start,
                self.next_activity.end,
                self.next_activity.confidence,
            )

    def _predict(self, now: int) -> None:
        """One predictor call through the configured backend; raises
        :class:`FaultInjectedError` when the ``predictor.exception`` fault
        fires instead of predicting."""
        if FAULTS.enabled and FAULTS.injector.should_fire(
            PREDICTOR_FAULT_POINT, now
        ):
            raise FaultInjectedError(
                PREDICTOR_FAULT_POINT, "injected: predictor backend failure"
            )
        config = self._prediction_config(now)
        if self._measure_latency:
            started = _time.perf_counter()
            self.next_activity = predict_next_activity(self.history, config, now)
            elapsed = _time.perf_counter() - started
            if FAULTS.enabled:
                elapsed += FAULTS.injector.latency_s(LATENCY_FAULT_POINT, now)
            self.outcome.record_prediction_latency(elapsed)
            return
        if self._bank is not None:
            self.next_activity = self._bank.predict(
                self._bank_key,
                now,
                self.history.login_array,
                lambda: self._predict_sliding(config, now),
            )
            return
        self.next_activity = self._predict_sliding(config, now)

    def _predict_sliding(self, config: ProRPConfig, now: int) -> PredictedActivity:
        """The paper's sliding-window path (Algorithm 4), cache included."""
        if self._fast_predictor is not None:
            if config is self.config:
                predictor = self._fast_predictor
            else:
                from repro.core.fast_predictor import get_fast_predictor

                predictor = get_fast_predictor(config)
            cache = self._prediction_cache
            if cache is None:
                return predictor.predict(self.history.login_array(), now)
            # The cache is consulted only after the fault point above, so
            # injector consult order is identical with and without it.
            login_version = self.history.login_version
            cached = cache.get(login_version, config, now)
            if cached is not None:
                return cached
            prediction = predictor.predict(self.history.login_array(), now)
            cache.put(login_version, config, now, prediction)
            return prediction
        return predict_next_activity(self.history, config, now)

    # ------------------------------------------------------------------
    # Settle-phase batching (region-driven)
    # ------------------------------------------------------------------

    def initial_prediction_request(self) -> Optional[ProRPConfig]:
        """Pre-flight for the region's batched settle-phase prediction.

        Returns the resolved Algorithm-4 configuration when this actor's
        ``start()`` is guaranteed to run a prediction at ``sim_start`` (it
        settles through the idle path with an old history), after
        performing the same trim that refresh would -- trimming twice at
        one instant is idempotent, so the in-start refresh then sees an
        unchanged ``login_version`` and replays as an exact-key cache hit.
        Returns None when no prediction will happen (no cache, database
        mid-session/new/empty at ``sim_start``, ProRP outage) so the
        region skips it.  Deliberately does **not** consult the circuit
        breaker (``allow`` can mutate breaker state) nor the fault
        injector -- both are consulted, in unchanged order, by the real
        refresh inside ``start()``.
        """
        if (
            self._prediction_cache is None
            or self._fast_predictor is None
            or self._measure_latency
            or self.sim_start <= 0
        ):
            return None
        sessions = self.trace.sessions
        index = 0
        while index < len(sessions) and sessions[index].end <= self.sim_start:
            index += 1
        if index >= len(sessions):
            return None  # start() goes to physical pause, no prediction
        if self.trace.created_at > self.sim_start:
            return None  # not born yet: physical pause until first login
        if sessions[index].start <= self.sim_start:
            return None  # mid-session: active, no idle settling
        if self._prorp_down(self.sim_start):
            return None  # refresh degrades to reactive without predicting
        trimmed = self.history.delete_old_history(
            self.config.history_days, self.sim_start
        )
        if not trimmed.old:
            return None  # new database: refresh skips the predictor
        return self._prediction_config(self.sim_start)

    def seed_prediction(
        self, config: ProRPConfig, now: int, prediction: PredictedActivity
    ) -> None:
        """Store a batched settle-phase prediction in the cache."""
        assert self._prediction_cache is not None
        self._prediction_cache.put(
            self.history.login_version, config, now, prediction
        )

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------

    def _enter_initial_idle(self) -> None:
        self._handle_idle(self.sim_start)

    def _handle_idle(self, now: int) -> None:
        """Lines 7-12: on becoming idle while RESUMED."""
        if self._begin_idle(now):
            return  # held by a running maintenance operation
        if prediction_expired(self.next_activity, now):
            self._refresh_prediction(now)
        decision = decide_on_idle(
            now, self.old, self.next_activity, self.config.logical_pause_s
        )
        if decision is IdleDecision.PHYSICAL_PAUSE:
            if not self._holds_slot:
                # Initial settling: never held a slot; record state only.
                self.lifecycle.state = LifecycleState.PHYSICALLY_PAUSED
                self.metadata.record_physical_pause(
                    self.database_id, self.next_activity.start
                )
            else:
                self._enter_physical_pause(
                    now,
                    LifecycleTransition.IDLE_TO_PHYSICAL,
                    self.next_activity.start,
                )
        else:
            if not self._holds_slot:
                self._acquire_slot()
            self.lifecycle.apply(LifecycleTransition.IDLE_TO_LOGICAL, now)
            self.metadata.set_state(self.database_id, DatabaseState.LOGICAL_PAUSE)
            self.outcome.record_workflow(now, "logical_pause")
            self._pause_start = now
            self._pause_origin = None
            self._schedule_wake(
                logical_pause_wake_time(
                    now,
                    now,
                    self.old,
                    self.next_activity,
                    self.config.logical_pause_s,
                )
            )

    def _on_wake(self, now: int) -> None:
        """Lines 24-29: the logical-pause wait expired with no activity."""
        self._wake_timer = None
        if self.lifecycle.state is not LifecycleState.LOGICALLY_PAUSED:
            return  # stale timer
        if self._maintenance_hold(now):
            return
        if self._close_maintenance_pause(now):
            # Physically paused before the operation: return there with the
            # stored prediction intact so the pre-warm still happens.
            self._enter_physical_pause(
                now,
                LifecycleTransition.LOGICAL_TO_PHYSICAL,
                self.next_activity.start,
            )
            self._idle_since = None
            return
        if self._idle_since is not None:
            pause_start = self._idle_since
        elif self._pause_start is not None:
            pause_start = self._pause_start
        else:
            pause_start = now
        self._refresh_prediction(now)
        decision = decide_after_logical_pause(
            now, pause_start, self.old, self.next_activity, self.config.logical_pause_s
        )
        if decision is IdleDecision.PHYSICAL_PAUSE:
            self._settle_idle_interval(now, resumed_by_login=False)
            self._enter_physical_pause(
                now, LifecycleTransition.LOGICAL_TO_PHYSICAL, self.next_activity.start
            )
        else:
            self._schedule_wake(
                logical_pause_wake_time(
                    now,
                    pause_start,
                    self.old,
                    self.next_activity,
                    self.config.logical_pause_s,
                )
            )

    def prewarm(self, now: int) -> None:
        """Algorithm 5 line 8: LogicalPause() for a physically paused
        database ahead of its predicted activity."""
        if self.lifecycle.state is not LifecycleState.PHYSICALLY_PAUSED:
            return  # raced with a reactive resume in the same tick
        self._acquire_slot()
        self.lifecycle.apply(LifecycleTransition.PROACTIVE_RESUME, now)
        self.metadata.set_state(self.database_id, DatabaseState.LOGICAL_PAUSE)
        self.outcome.record_workflow(now, "proactive_resume")
        self._pause_start = now
        self._pause_origin = "prewarm"
        self._schedule_wake(
            logical_pause_wake_time(
                now, now, self.old, self.next_activity, self.config.logical_pause_s
            )
        )
