"""Emit the telemetry stream a production ProRP deployment would produce.

The simulator's per-database outcomes already hold every event with its
timestamp; this module converts them into :class:`TelemetryEvent` records
(activity tracking, lifecycle workflows, resume-operation iterations) and
appends them to a store for offline evaluation (Section 8) and training.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.observability.tracer import SpanRecord
from repro.simulation.region import RegionSimulationResult
from repro.telemetry.events import Component, TelemetryEvent
from repro.telemetry.store import TelemetryStore
from repro.types import ActivityTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.parallel.base import SweepStats


def emit_simulation_telemetry(
    result: RegionSimulationResult,
    traces: Sequence[ActivityTrace],
    store: TelemetryStore,
) -> int:
    """Append the full event stream of one simulation run; returns the
    number of events emitted."""
    emitted = 0
    window_start = result.settings.eval_start
    window_end = result.settings.eval_end
    by_id = {trace.database_id: trace for trace in traces}

    for outcome in result.outcomes:
        trace = by_id.get(outcome.database_id)
        if trace is not None:
            for session in trace.sessions:
                if window_start <= session.start < window_end:
                    store.append(TelemetryEvent(
                        session.start,
                        outcome.database_id,
                        Component.ACTIVITY_TRACKING,
                        {"event_type": 1},
                    ))
                    emitted += 1
                if window_start <= session.end < window_end:
                    store.append(TelemetryEvent(
                        session.end,
                        outcome.database_id,
                        Component.ACTIVITY_TRACKING,
                        {"event_type": 0},
                    ))
                    emitted += 1
        workflow_streams = [
            ("proactive_resume", outcome.proactive_resume_times),
            ("reactive_resume", outcome.reactive_resume_times),
            ("logical_pause", outcome.logical_pause_times),
            ("physical_pause", outcome.physical_pause_times),
        ]
        for kind, times in workflow_streams:
            for t in times:
                store.append(TelemetryEvent(
                    t,
                    outcome.database_id,
                    Component.LIFECYCLE,
                    {"workflow": kind},
                ))
                emitted += 1

    for iteration in result.resume_iterations:
        if window_start <= iteration.time < window_end:
            store.append(TelemetryEvent(
                iteration.time,
                "-",
                Component.RESUME_OPERATION,
                {"batch_size": iteration.batch_size},
            ))
            emitted += 1
    return emitted


def emit_observability_telemetry(
    spans: Sequence[SpanRecord], store: TelemetryStore
) -> int:
    """Drain live tracer spans into the long-term store.

    Only spans carrying a ``t`` attribute are emitted -- those are the ones
    anchored on the simulation timeline (engine dispatch, predictions, the
    resume scan); wall-clock-only spans (SQL statements, B-tree ops) have
    no meaningful position in the store's partitioning.  ``resume.scan``
    spans become :attr:`Component.RESUME_OPERATION` events, replacing the
    post-hoc replay of iteration records with the live trace itself --
    no dual bookkeeping.  Everything else lands under
    :attr:`Component.OBSERVABILITY` with its name and wall duration.
    Returns the number of events emitted.
    """
    emitted = 0
    for span in spans:
        t = span.attributes.get("t")
        if t is None:
            continue
        database_id = str(span.attributes.get("db", "-"))
        if span.name == "resume.scan":
            store.append(TelemetryEvent(
                int(t),
                database_id,
                Component.RESUME_OPERATION,
                {"batch_size": span.attributes.get("batch_size", 0)},
            ))
        else:
            store.append(TelemetryEvent(
                int(t),
                database_id,
                Component.OBSERVABILITY,
                {
                    "span": span.name,
                    "duration_us": round(span.duration_ns / 1000.0, 3),
                },
            ))
        emitted += 1
    return emitted


def emit_sweep_telemetry(
    stats: "SweepStats", store: TelemetryStore, time: int = 0
) -> int:
    """Append the telemetry of one sweep-executor run.

    One event per completed task (its wall time and the worker that ran
    it) plus a run summary carrying queue counts, end-to-end wall time,
    and the measured speedup -- the operational signals a production
    training fleet would alert on.  ``time`` anchors the events on the
    store's timeline (sweeps run on wall clocks, not simulation clocks).
    Returns the number of events emitted.
    """
    for record in stats.tasks:
        store.append(TelemetryEvent(
            time,
            "-",
            Component.SWEEP_EXECUTOR,
            {
                "kind": "task",
                "task_index": record.index,
                "wall_ms": round(record.wall_s * 1000.0, 3),
                "worker": record.worker,
            },
        ))
    store.append(TelemetryEvent(
        time,
        "-",
        Component.SWEEP_EXECUTOR,
        {
            "kind": "run",
            "backend": stats.backend,
            "workers": stats.workers,
            "tasks_queued": stats.tasks_queued,
            "tasks_completed": stats.tasks_completed,
            "n_chunks": stats.n_chunks,
            "wall_ms": round(stats.wall_s * 1000.0, 3),
            "task_wall_ms": round(stats.task_wall_s * 1000.0, 3),
            "speedup": round(stats.speedup, 3),
            "fallback_reason": stats.fallback_reason,
        },
    ))
    return len(stats.tasks) + 1
