"""Workflow engine: queued resume/pause operations with bounded
concurrency and fault injection.

Workflows are driven by explicit ``tick(now)`` calls so the engine can be
tested standalone and stress-tested at the volumes of Figures 11-12
without entangling the KPI simulator.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.errors import WorkflowError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.observability.runtime import OBS

#: Fault point consulted when a workflow starts: it hangs instead of
#: progressing (the Section 7 failure mode the diagnostics runner retries).
STUCK_POINT = "workflow.stuck"

#: Fault point consulted when a workflow starts: it dies outright and goes
#: terminal FAILED without any mitigation window (node loss mid-workflow).
CRASH_POINT = "workflow.crash"


class WorkflowKind(enum.Enum):
    PROACTIVE_RESUME = "proactive_resume"
    REACTIVE_RESUME = "reactive_resume"
    PHYSICAL_PAUSE = "physical_pause"


class WorkflowState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    #: Stopped making progress (fault injection); needs mitigation.
    STUCK = "stuck"
    #: Mitigation retried it; terminal success is still possible.
    MITIGATED = "mitigated"
    #: Gave up after mitigation attempts: incident territory.
    FAILED = "failed"


@dataclass
class Workflow:
    """One resume/pause workflow instance."""

    workflow_id: int
    kind: WorkflowKind
    database_id: str
    submitted_at: int
    duration_s: int
    state: WorkflowState = WorkflowState.PENDING
    started_at: Optional[int] = None
    finished_at: Optional[int] = None
    retries: int = 0

    @property
    def terminal(self) -> bool:
        return self.state in (WorkflowState.SUCCEEDED, WorkflowState.FAILED)


class WorkflowEngine:
    """Bounded-concurrency workflow executor with fault injection.

    ``stuck_probability`` is the chance that a started workflow hangs
    instead of completing -- the failure mode the diagnostics runner of
    Section 7 exists to mitigate.  Fault decisions flow through a
    :class:`repro.faults.FaultInjector`: by default the engine builds one
    from ``stuck_probability``/``seed``, and callers (chaos experiments)
    may pass their own ``injector`` with :data:`STUCK_POINT` and/or
    :data:`CRASH_POINT` specs to drive richer failure schedules.

    ``journal`` is the durability hook: when set, it is called with one
    plain-dict event *before* the corresponding state mutation is applied
    (journal-before-apply).  :class:`repro.controlplane.durability.engine.
    DurableWorkflowEngine` points it at a write-ahead log so every
    transition is on stable storage before the in-memory state reflects
    it; if the journal call raises (an injected control-plane crash), the
    mutation never happens.
    """

    def __init__(
        self,
        max_concurrent: int = 100,
        default_duration_s: int = 45,
        stuck_probability: float = 0.0,
        seed: int = 0,
        injector: Optional[FaultInjector] = None,
        journal: Optional[Callable[[Dict[str, object]], None]] = None,
    ):
        if max_concurrent <= 0:
            raise WorkflowError("max_concurrent must be positive")
        if not 0.0 <= stuck_probability < 1.0:
            raise WorkflowError("stuck_probability must be in [0, 1)")
        self._max_concurrent = max_concurrent
        self._default_duration_s = default_duration_s
        self._stuck_probability = stuck_probability
        if injector is None:
            plan = (
                FaultPlan.of(FaultSpec(STUCK_POINT, probability=stuck_probability))
                if stuck_probability > 0.0
                else FaultPlan.empty()
            )
            injector = FaultInjector(plan, seed=seed)
        self._injector = injector
        self._journal = journal
        self._next_id = 0
        self._pending: Deque[Workflow] = deque()
        self._running: List[Workflow] = []
        self.workflows: Dict[int, Workflow] = {}

    def _emit(self, event: Dict[str, object]) -> None:
        if self._journal is not None:
            self._journal(event)

    @property
    def injector(self) -> FaultInjector:
        """The fault injector driving stuck/crash decisions."""
        return self._injector

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        kind: WorkflowKind,
        database_id: str,
        now: int,
        duration_s: Optional[int] = None,
    ) -> Workflow:
        workflow = Workflow(
            workflow_id=self._next_id,
            kind=kind,
            database_id=database_id,
            submitted_at=now,
            duration_s=duration_s if duration_s is not None else self._default_duration_s,
        )
        self._emit(
            {
                "type": "submitted",
                "wf": workflow.workflow_id,
                "kind": kind.value,
                "db": database_id,
                "at": now,
                "duration_s": workflow.duration_s,
            }
        )
        self._next_id += 1
        self.workflows[workflow.workflow_id] = workflow
        self._pending.append(workflow)
        if OBS.enabled:
            OBS.metrics.counter(f"workflow.submitted.{kind.value}").inc()
            OBS.metrics.gauge("workflow.pending").set(len(self._pending))
        return workflow

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def tick(self, now: int) -> List[Workflow]:
        """Advance the engine: finish due workflows, start pending ones.
        Returns workflows that reached SUCCEEDED during this tick."""
        if not OBS.enabled:
            return self._tick(now)
        with OBS.tracer.span("workflow.tick", t=now) as span:
            completed = self._tick(now)
            span.set_attribute("completed", len(completed))
        OBS.metrics.counter("workflow.completed").inc(len(completed))
        OBS.metrics.gauge("workflow.running").set(len(self._running))
        OBS.metrics.gauge("workflow.pending").set(len(self._pending))
        return completed

    def _tick(self, now: int) -> List[Workflow]:
        completed: List[Workflow] = []
        # Each completion is journaled and applied in full before the next
        # one is considered: an exception from the journal hook must leave
        # every earlier transition fully applied (including its removal
        # from the running list) and the interrupted one not at all.
        index = 0
        while index < len(self._running):
            workflow = self._running[index]
            if workflow.state is WorkflowState.STUCK:
                index += 1
                continue
            if workflow.started_at + workflow.duration_s <= now:
                self._emit(
                    {"type": "succeeded", "wf": workflow.workflow_id, "at": now}
                )
                self._running.pop(index)
                workflow.state = WorkflowState.SUCCEEDED
                workflow.finished_at = now
                completed.append(workflow)
            else:
                index += 1
        while self._pending and len(self._running) < self._max_concurrent:
            # Peek, don't pop: the dequeue is part of the state mutation
            # and must not happen until the decision is journaled -- a
            # failed journal append would otherwise lose the workflow
            # from both queues.
            workflow = self._pending[0]
            if self._injector.should_fire(CRASH_POINT, now):
                # The workflow dies outright: terminal, one incident-worthy
                # failure, never enters the running set.
                self._emit(
                    {"type": "crashed", "wf": workflow.workflow_id, "at": now}
                )
                self._pending.popleft()
                workflow.state = WorkflowState.FAILED
                workflow.started_at = now
                workflow.finished_at = now
                if OBS.enabled:
                    OBS.metrics.counter("workflow.crashed").inc()
                continue
            stuck = self._injector.should_fire(STUCK_POINT, now)
            self._emit(
                {
                    "type": "stuck" if stuck else "started",
                    "wf": workflow.workflow_id,
                    "at": now,
                }
            )
            self._pending.popleft()
            workflow.state = (
                WorkflowState.STUCK if stuck else WorkflowState.RUNNING
            )
            workflow.started_at = now
            self._running.append(workflow)
        return completed

    # ------------------------------------------------------------------
    # Mitigation hooks (used by the diagnostics runner)
    # ------------------------------------------------------------------

    def stuck_workflows(self, now: int, stuck_after_s: int) -> List[Workflow]:
        """Workflows that stopped making progress for ``stuck_after_s``."""
        return [
            w
            for w in self._running
            if w.state is WorkflowState.STUCK
            and now - w.started_at >= stuck_after_s
        ]

    def retry(self, workflow: Workflow, now: int) -> None:
        """Mitigate a stuck workflow: restart it at the queue head."""
        if workflow.state is not WorkflowState.STUCK:
            raise WorkflowError(
                f"workflow {workflow.workflow_id} is {workflow.state.value}, not stuck"
            )
        self._emit({"type": "mitigated", "wf": workflow.workflow_id, "at": now})
        self._running.remove(workflow)
        workflow.state = WorkflowState.MITIGATED
        workflow.retries += 1
        workflow.started_at = None
        self._pending.appendleft(workflow)
        if OBS.enabled:
            OBS.metrics.counter("workflow.mitigated").inc()

    def fail(self, workflow: Workflow, now: int) -> None:
        """Give up on a workflow (incident escalation).

        The workflow leaves *both* queues: a previously mitigated workflow
        waits in ``_pending``, and failing it there must not leave a
        terminal workflow behind for ``_tick`` to start later.
        """
        self._emit({"type": "failed", "wf": workflow.workflow_id, "at": now})
        if workflow in self._running:
            self._running.remove(workflow)
        try:
            self._pending.remove(workflow)
        except ValueError:
            pass
        workflow.state = WorkflowState.FAILED
        workflow.finished_at = now
        if OBS.enabled:
            OBS.metrics.counter("workflow.failed").inc()

    # ------------------------------------------------------------------
    # Monitoring surface
    # ------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def running_count(self) -> int:
        return len(self._running)

    def queue_depth(self, kind: WorkflowKind) -> int:
        return sum(1 for w in self._pending if w.kind is kind)

    def drained(self) -> bool:
        return not self._pending and not self._running
