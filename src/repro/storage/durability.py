"""Durability of the database history (Sections 3.3 and 5).

Two requirements from the paper:

* "if a database moves from one compute node to another to balance the
  load, its history must move with it" -- trivially satisfied because the
  history lives inside the tenant database, but the move itself needs a
  serialization format;
* "we leverage the established backup and restore mechanisms of Azure SQL
  Database to tackle data loss" -- snapshots with checksums stand in for
  those mechanisms.

Snapshots are plain JSON so they survive process restarts and can be
inspected; a CRC-style checksum detects corruption on restore.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple

from repro.errors import StorageError
from repro.storage.history import HistoryStore
from repro.types import EventType, HistoryEvent

#: Snapshot format version, bumped on layout changes.
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class HistorySnapshot:
    """A point-in-time copy of one database's history."""

    database_id: str
    events: Tuple[HistoryEvent, ...]
    checksum: int
    version: int = SNAPSHOT_VERSION

    @property
    def tuple_count(self) -> int:
        return len(self.events)


def _checksum(events: List[Tuple[int, int]]) -> int:
    payload = json.dumps(events, separators=(",", ":")).encode("ascii")
    return zlib.crc32(payload)


def snapshot_history(store: HistoryStore, database_id: str) -> HistorySnapshot:
    """Take a consistent snapshot (backup) of the history store."""
    events = store.all_events()
    raw = [(e.time_snapshot, int(e.event_type)) for e in events]
    return HistorySnapshot(
        database_id=database_id,
        events=tuple(events),
        checksum=_checksum(raw),
    )


def restore_history(snapshot: HistorySnapshot) -> HistoryStore:
    """Rebuild a history store from a snapshot, verifying the checksum.

    Restores are how history follows a database across node moves and how
    data loss is repaired from backups.
    """
    raw = [(e.time_snapshot, int(e.event_type)) for e in snapshot.events]
    if _checksum(raw) != snapshot.checksum:
        raise StorageError(
            f"snapshot of {snapshot.database_id!r} fails its checksum: "
            "refusing to restore corrupt history"
        )
    store = HistoryStore()
    loaded = store.bulk_load(snapshot.events)
    if loaded != len(snapshot.events):
        raise StorageError(
            f"snapshot of {snapshot.database_id!r} contains duplicate "
            "timestamps: the source table violated its unique constraint"
        )
    return store


# ---------------------------------------------------------------------------
# File round trip (the "established backup mechanisms")
# ---------------------------------------------------------------------------


def write_snapshot(snapshot: HistorySnapshot, path: Path) -> None:
    """Persist a snapshot as JSON."""
    document = {
        "version": snapshot.version,
        "database_id": snapshot.database_id,
        "checksum": snapshot.checksum,
        "events": [
            [e.time_snapshot, int(e.event_type)] for e in snapshot.events
        ],
    }
    Path(path).write_text(json.dumps(document), encoding="utf-8")


def read_snapshot(path: Path) -> HistorySnapshot:
    """Load a snapshot written by :func:`write_snapshot`."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if document.get("version") != SNAPSHOT_VERSION:
        raise StorageError(
            f"unsupported snapshot version {document.get('version')!r}"
        )
    events = tuple(
        HistoryEvent(t, EventType(e)) for t, e in document["events"]
    )
    return HistorySnapshot(
        database_id=document["database_id"],
        events=events,
        checksum=document["checksum"],
    )


def move_history(
    store: HistoryStore, database_id: str
) -> Tuple[HistorySnapshot, HistoryStore]:
    """Simulate a load-balancing move: snapshot on the source node, restore
    on the target node; returns (snapshot, store-on-new-node)."""
    snapshot = snapshot_history(store, database_id)
    return snapshot, restore_history(snapshot)
