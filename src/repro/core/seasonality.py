"""Per-database seasonality detection.

The paper fixes the seasonality knob per region (daily in production,
weekly evaluated offline -- Section 9.2).  Resource usage patterns vary
per database, though (Section 1, challenge 1): a weekly batch database is
invisible to the daily detector at any reasonable confidence.  This module
classifies each database's history as daily or weekly from two cheap
statistics and lets the policy run Algorithm 4 with the right period:

* **activity density** -- the fraction of retained days with at least one
  login.  Dense histories are daily-predictable by construction.
* **day-of-week concentration** -- among active days, the share belonging
  to the most common weekday.  Sparse but concentrated histories are
  weekly patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.config import ProRPConfig, Seasonality
from repro.errors import ConfigError
from repro.types import SECONDS_PER_DAY

#: A database active on at least this fraction of days is daily.
DENSE_ACTIVITY_THRESHOLD = 0.5
#: A sparse database whose active days concentrate on one weekday at or
#: above this share (with at least MIN_WEEKLY_OCCURRENCES samples) is
#: weekly.
WEEKDAY_CONCENTRATION_THRESHOLD = 0.6
MIN_WEEKLY_OCCURRENCES = 3


@dataclass(frozen=True)
class SeasonalityDiagnosis:
    """Why a database was classified the way it was."""

    seasonality: Seasonality
    active_days: int
    observed_days: int
    weekday_concentration: float

    @property
    def activity_density(self) -> float:
        if self.observed_days == 0:
            return 0.0
        return self.active_days / self.observed_days


def detect_seasonality(
    logins: Sequence[int], now: int, history_days: int
) -> SeasonalityDiagnosis:
    """Classify the login pattern of the last ``history_days`` days.

    Defaults to DAILY whenever the evidence is inconclusive -- the paper's
    production choice, and the safe one: the daily detector still catches
    weekly patterns at low confidence (4/28 = 0.14 > c = 0.1) while the
    weekly detector would ignore six sevenths of a daily pattern's data.
    """
    history_start = now - history_days * SECONDS_PER_DAY
    active_days = set()
    for t in logins:
        if history_start <= t <= now:
            active_days.add(t // SECONDS_PER_DAY)
    weekday_counts = [0] * 7
    for day in active_days:
        weekday_counts[day % 7] += 1
    concentration = (
        max(weekday_counts) / len(active_days) if active_days else 0.0
    )
    density = len(active_days) / history_days if history_days else 0.0
    if (
        density < DENSE_ACTIVITY_THRESHOLD
        and concentration >= WEEKDAY_CONCENTRATION_THRESHOLD
        and max(weekday_counts) >= MIN_WEEKLY_OCCURRENCES
    ):
        seasonality = Seasonality.WEEKLY
    else:
        seasonality = Seasonality.DAILY
    return SeasonalityDiagnosis(
        seasonality=seasonality,
        active_days=len(active_days),
        observed_days=history_days,
        weekday_concentration=concentration,
    )


def config_for_seasonality(base: ProRPConfig, seasonality: Seasonality) -> ProRPConfig:
    """Derive the Algorithm 4 configuration for a detected seasonality.

    The weekly variant needs a week-long prediction horizon (the next
    occurrence can be up to seven days away) and a history length that is a
    whole number of weeks; everything else is inherited.
    """
    if seasonality is base.seasonality:
        return base
    if seasonality is Seasonality.WEEKLY:
        history_days = base.history_days - (base.history_days % 7)
        if history_days < 7:
            raise ConfigError(
                "weekly seasonality needs at least one week of history"
            )
        return base.with_overrides(
            seasonality=Seasonality.WEEKLY,
            history_days=history_days,
            horizon_s=7 * SECONDS_PER_DAY,
        )
    return base.with_overrides(
        seasonality=Seasonality.DAILY, horizon_s=SECONDS_PER_DAY
    )
