"""Tests for workload archetypes and trace invariants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.types import SECONDS_PER_DAY, SECONDS_PER_HOUR, ActivityTrace
from repro.workload.archetypes import (
    BurstyDev,
    DailyBusinessHours,
    Dormant,
    NightlyJob,
    Sporadic,
    Stable,
    WeeklyBatch,
    maintenance_sessions,
)

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR

ALL_ARCHETYPES = [
    DailyBusinessHours(),
    NightlyJob(),
    WeeklyBatch(),
    Stable(),
    BurstyDev(),
    Sporadic(),
    Dormant(),
]


@pytest.mark.parametrize("archetype", ALL_ARCHETYPES, ids=lambda a: a.name)
def test_sessions_sorted_non_overlapping_within_bounds(archetype):
    rng = random.Random(42)
    start, end = 3 * DAY, 24 * DAY
    sessions = archetype.generate(start, end, rng)
    previous_end = start
    for session in sessions:
        assert session.start >= previous_end
        assert session.end <= end
        assert session.duration > 0
        previous_end = session.end
    # A valid ActivityTrace can always be built from the output.
    ActivityTrace("t", sessions)


@pytest.mark.parametrize("archetype", ALL_ARCHETYPES, ids=lambda a: a.name)
def test_generation_deterministic_per_seed(archetype):
    a = archetype.generate(0, 14 * DAY, random.Random(7))
    b = archetype.generate(0, 14 * DAY, random.Random(7))
    assert a == b


class TestDailyBusinessHours:
    def test_weekdays_only_skips_weekends(self):
        archetype = DailyBusinessHours(
            weekdays_only=True, skip_day_probability=0.0
        )
        sessions = archetype.generate(0, 28 * DAY, random.Random(1))
        for session in sessions:
            assert session.start % (7 * DAY) // DAY < 5

    def test_all_days_when_not_weekdays_only(self):
        archetype = DailyBusinessHours(
            weekdays_only=False, skip_day_probability=0.0
        )
        sessions = archetype.generate(0, 28 * DAY, random.Random(1))
        active_days = {s.start // DAY for s in sessions}
        assert len(active_days) == 28

    def test_activity_within_plausible_hours(self):
        archetype = DailyBusinessHours(
            workday_start_h=9, workday_end_h=17, skip_day_probability=0.0
        )
        sessions = archetype.generate(0, 28 * DAY, random.Random(3))
        for session in sessions:
            hour = (session.start % DAY) / HOUR
            assert 6.0 <= hour <= 21.0

    def test_breaks_create_multiple_sessions_per_day(self):
        archetype = DailyBusinessHours(
            breaks_per_day=5, weekdays_only=False, skip_day_probability=0.0
        )
        sessions = archetype.generate(0, 14 * DAY, random.Random(5))
        per_day = {}
        for session in sessions:
            per_day.setdefault(session.start // DAY, 0)
            per_day[session.start // DAY] += 1
        assert sum(per_day.values()) / len(per_day) > 2.0


class TestNightlyJob:
    def test_one_job_per_day_near_job_hour(self):
        archetype = NightlyJob(job_hour=2.0, skip_day_probability=0.0)
        sessions = archetype.generate(0, 28 * DAY, random.Random(2))
        assert 25 <= len(sessions) <= 28  # merging may fuse rare overlaps
        for session in sessions:
            hour = (session.start % DAY) / HOUR
            assert 1.0 <= hour <= 3.0


class TestWeeklyBatch:
    def test_runs_on_configured_weekday(self):
        archetype = WeeklyBatch(weekday=2, start_hour=6.0)
        sessions = archetype.generate(0, 28 * DAY, random.Random(2))
        assert len(sessions) == 4
        for session in sessions:
            assert (session.start // DAY) % 7 == 2

    def test_invalid_weekday_rejected(self):
        with pytest.raises(ValueError):
            WeeklyBatch(weekday=7)


class TestActivityLevels:
    def test_stable_mostly_active(self):
        sessions = Stable().generate(0, 14 * DAY, random.Random(4))
        active = sum(s.duration for s in sessions)
        assert active / (14 * DAY) > 0.9

    def test_dormant_mostly_idle(self):
        sessions = Dormant().generate(0, 28 * DAY, random.Random(4))
        active = sum(s.duration for s in sessions)
        assert active / (28 * DAY) < 0.05

    def test_sporadic_between(self):
        sessions = Sporadic().generate(0, 28 * DAY, random.Random(4))
        active = sum(s.duration for s in sessions)
        assert 0.0 < active / (28 * DAY) < 0.2

    def test_bursty_dev_prefers_its_hour(self):
        archetype = BurstyDev(
            days_between_episodes=1.0, preferred_hour=14.0, hour_jitter_h=1.0
        )
        sessions = archetype.generate(0, 28 * DAY, random.Random(6))
        hours = [(s.start % DAY) / HOUR for s in sessions]
        centered = sum(1 for h in hours if 10 <= h <= 18)
        assert centered / len(hours) > 0.8


def test_maintenance_sessions_do_not_overlap():
    sessions = maintenance_sessions(0, 28 * DAY, random.Random(1), per_week=3)
    for a, b in zip(sessions, sessions[1:]):
        assert b.start >= a.end
    assert sessions, "expected some maintenance activity"


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=40))
def test_archetype_fuzz_valid_traces(seed, span_days):
    """Any archetype with any seed yields a valid, bounded trace."""
    for archetype in ALL_ARCHETYPES:
        sessions = archetype.generate(0, span_days * DAY, random.Random(seed))
        trace = ActivityTrace(archetype.name, sessions)
        if sessions:
            assert trace.span[1] <= span_days * DAY
