"""Tests for BETWEEN, IN, and EXPLAIN support in the SQL engine."""

import pytest

from repro.errors import SqlExecutionError, SqlSyntaxError
from repro.sqlengine import ast
from repro.sqlengine.engine import SqlEngine
from repro.sqlengine.parser import parse
from repro.storage.database import Database


@pytest.fixture
def engine():
    database = Database("test")
    eng = SqlEngine(database)
    eng.execute(
        "CREATE TABLE t (id BIGINT PRIMARY KEY, kind TEXT NOT NULL, value FLOAT)"
    )
    for i in range(10):
        eng.execute(
            "INSERT INTO t (id, kind, value) VALUES (@i, @k, @v)",
            {"i": i, "k": "even" if i % 2 == 0 else "odd", "v": float(i)},
        )
    return eng


class TestBetween:
    def test_parse(self):
        statement = parse("SELECT * FROM t WHERE id BETWEEN 1 AND 5")
        assert isinstance(statement.where, ast.Between)
        assert not statement.where.negated

    def test_parse_not_between(self):
        statement = parse("SELECT * FROM t WHERE id NOT BETWEEN 1 AND 5")
        assert statement.where.negated

    def test_between_inclusive(self, engine):
        rows = engine.execute("SELECT id FROM t WHERE id BETWEEN 3 AND 6").rows
        assert [r["id"] for r in rows] == [3, 4, 5, 6]

    def test_not_between(self, engine):
        rows = engine.execute("SELECT id FROM t WHERE id NOT BETWEEN 2 AND 8").rows
        assert [r["id"] for r in rows] == [0, 1, 9]

    def test_between_with_params(self, engine):
        rows = engine.execute(
            "SELECT id FROM t WHERE id BETWEEN @lo AND @hi", {"lo": 1, "hi": 3}
        ).rows
        assert [r["id"] for r in rows] == [1, 2, 3]

    def test_between_uses_clustered_index(self, engine):
        row = engine.execute("EXPLAIN SELECT * FROM t WHERE id BETWEEN 1 AND 5").rows[0]
        assert row["scan"] == "clustered"
        assert row["bounds"] == ">= <="
        assert row["residual"] is False

    def test_not_between_is_residual(self, engine):
        row = engine.execute(
            "EXPLAIN SELECT * FROM t WHERE id NOT BETWEEN 1 AND 5"
        ).rows[0]
        assert row["scan"] == "full"
        assert row["residual"] is True

    def test_between_null_semantics(self, engine):
        engine.execute("INSERT INTO t (id, kind, value) VALUES (100, 'x', NULL)")
        rows = engine.execute(
            "SELECT id FROM t WHERE value BETWEEN 0.0 AND 1000.0"
        ).rows
        assert 100 not in [r["id"] for r in rows]

    def test_between_and_binds_tighter_than_logical_and(self, engine):
        rows = engine.execute(
            "SELECT id FROM t WHERE id BETWEEN 1 AND 6 AND kind = 'even'"
        ).rows
        assert [r["id"] for r in rows] == [2, 4, 6]


class TestIn:
    def test_parse(self):
        statement = parse("SELECT * FROM t WHERE kind IN ('a', 'b')")
        assert isinstance(statement.where, ast.InList)
        assert len(statement.where.items) == 2

    def test_in_filter(self, engine):
        rows = engine.execute("SELECT id FROM t WHERE id IN (1, 5, 99)").rows
        assert [r["id"] for r in rows] == [1, 5]

    def test_not_in(self, engine):
        rows = engine.execute(
            "SELECT id FROM t WHERE id NOT IN (0, 1, 2, 3, 4, 5, 6, 7)"
        ).rows
        assert [r["id"] for r in rows] == [8, 9]

    def test_in_with_params(self, engine):
        rows = engine.execute(
            "SELECT id FROM t WHERE kind IN (@a, @b) AND id < 4",
            {"a": "even", "b": "none"},
        ).rows
        assert [r["id"] for r in rows] == [0, 2]

    def test_in_with_null_item_is_unknown(self, engine):
        """x IN (..., NULL) is NULL (not true) when x matches nothing."""
        rows = engine.execute("SELECT id FROM t WHERE id IN (99, NULL)").rows
        assert rows == []

    def test_in_type_mismatch(self, engine):
        with pytest.raises(SqlExecutionError):
            engine.execute("SELECT id FROM t WHERE id IN ('one')")


class TestExplain:
    def test_explain_point_lookup(self, engine):
        row = engine.execute("EXPLAIN SELECT * FROM t WHERE id = 3").rows[0]
        assert row == {
            "statement": "SELECT",
            "scan": "clustered",
            "table": "t",
            "index_column": "id",
            "bounds": ">= <=",
            "residual": False,
        }

    def test_explain_full_scan(self, engine):
        row = engine.execute("EXPLAIN SELECT * FROM t WHERE kind = 'x'").rows[0]
        assert row["scan"] == "full"
        assert row["index_column"] is None

    def test_explain_delete_and_update(self, engine):
        for sql in (
            "EXPLAIN DELETE FROM t WHERE id < 3",
            "EXPLAIN UPDATE t SET kind = 'y' WHERE id < 3",
        ):
            row = engine.execute(sql).rows[0]
            assert row["scan"] == "clustered"
            assert row["bounds"] == "<"

    def test_explain_does_not_execute(self, engine):
        engine.execute("EXPLAIN DELETE FROM t")
        assert engine.execute("SELECT COUNT(*) AS n FROM t").scalar() == 10

    def test_explain_secondary_index(self):
        database = Database("test")
        engine = SqlEngine(database)
        engine.execute("CREATE TABLE m (id TEXT PRIMARY KEY, ts BIGINT NOT NULL)")
        engine.execute("CREATE INDEX ON m (ts)")
        row = engine.execute("EXPLAIN SELECT * FROM m WHERE ts >= 10").rows[0]
        assert row["scan"] == "secondary"
        assert row["index_column"] == "ts"

    def test_explain_insert_rejected(self, engine):
        with pytest.raises(SqlSyntaxError):
            engine.execute("EXPLAIN INSERT INTO t (id, kind) VALUES (1, 'x')")

    def test_explain_prewarm_scan_uses_secondary_index(self):
        """Algorithm 5's production query must not scan the whole region."""
        from repro.sqlengine.procedures import SqlMetadataProcedures, _PREWARM_SCAN

        procs = SqlMetadataProcedures()
        row = procs.engine.execute(f"EXPLAIN {_PREWARM_SCAN}").rows[0]
        assert row["scan"] == "secondary"
        assert row["index_column"] == "start_of_pred_activity"
        assert row["residual"] is True  # the state = 'physical_pause' filter

class TestGroupBy:
    def test_count_per_group(self, engine):
        rows = engine.execute(
            "SELECT kind, COUNT(*) AS n FROM t GROUP BY kind ORDER BY kind"
        ).rows
        assert rows == [{"kind": "even", "n": 5}, {"kind": "odd", "n": 5}]

    def test_min_max_per_group(self, engine):
        rows = engine.execute(
            "SELECT kind, MIN(id) AS lo, MAX(id) AS hi FROM t "
            "GROUP BY kind ORDER BY kind"
        ).rows
        assert rows[0] == {"kind": "even", "lo": 0, "hi": 8}
        assert rows[1] == {"kind": "odd", "lo": 1, "hi": 9}

    def test_where_applies_before_grouping(self, engine):
        rows = engine.execute(
            "SELECT kind, COUNT(*) AS n FROM t WHERE id < 5 "
            "GROUP BY kind ORDER BY kind"
        ).rows
        assert rows == [{"kind": "even", "n": 3}, {"kind": "odd", "n": 2}]

    def test_limit_after_grouping(self, engine):
        rows = engine.execute(
            "SELECT kind, COUNT(*) AS n FROM t GROUP BY kind "
            "ORDER BY kind LIMIT 1"
        ).rows
        assert rows == [{"kind": "even", "n": 5}]

    def test_alias_on_group_key(self, engine):
        rows = engine.execute(
            "SELECT kind AS k, COUNT(*) AS n FROM t GROUP BY kind ORDER BY k"
        ).rows
        assert rows[0]["k"] == "even"

    def test_non_aggregated_column_rejected(self, engine):
        with pytest.raises(SqlExecutionError):
            engine.execute("SELECT kind, value FROM t GROUP BY kind")

    def test_star_rejected(self, engine):
        with pytest.raises(SqlExecutionError):
            engine.execute("SELECT * FROM t GROUP BY kind")

    def test_unknown_group_column(self, engine):
        with pytest.raises(SqlExecutionError):
            engine.execute("SELECT bogus, COUNT(*) FROM t GROUP BY bogus")

    def test_region_state_histogram(self):
        """The domain query GROUP BY exists for: the diagnostics runner's
        per-state census of sys.databases (how many resumed / paused)."""
        from repro.sqlengine.procedures import SqlMetadataProcedures

        procs = SqlMetadataProcedures()
        for i in range(6):
            procs.register(f"db-{i}")
        procs.record_physical_pause("db-0", 100)
        procs.record_physical_pause("db-1", 200)
        procs.set_state("db-2", "logical_pause")
        rows = procs.engine.execute(
            "SELECT state, COUNT(*) AS n FROM sys.databases "
            "GROUP BY state ORDER BY state"
        ).rows
        assert rows == [
            {"state": "logical_pause", "n": 1},
            {"state": "physical_pause", "n": 2},
            {"state": "resumed", "n": 3},
        ]
