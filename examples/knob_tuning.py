"""Knob tuning: one run of the offline training pipeline (Section 8).

A region operator sweeps the window size and confidence threshold over a
training fleet, inspects the QoS/COGS trade-off (the data behind Figures
8-9), and installs the best configuration under the production objective
(QoS first, idle time capped).

Run:  python examples/knob_tuning.py
"""

from repro.analysis import format_table
from repro.config import ProRPConfig
from repro.simulation import SimulationSettings
from repro.training import ParameterGrid, TrainingPipeline, qos_priority_objective
from repro.types import SECONDS_PER_DAY as DAY, SECONDS_PER_HOUR as HOUR
from repro.workload import RegionPreset, generate_region_traces


def main() -> None:
    # Training data: last month's activity of a sample of the region.
    traces = generate_region_traces(RegionPreset.US1, n_databases=150, seed=3)
    settings = SimulationSettings(eval_start=31 * DAY, eval_end=33 * DAY)

    pipeline = TrainingPipeline(
        traces, settings, objective=qos_priority_objective(idle_cap_percent=15.0)
    )
    grid = ParameterGrid(
        {
            "window_s": [2 * HOUR, 5 * HOUR, 7 * HOUR],
            "confidence": [0.1, 0.4, 0.8],
        }
    )
    report = pipeline.run(ProRPConfig(), grid)

    rows = [
        [
            candidate.config.window_s // HOUR,
            candidate.config.confidence,
            round(candidate.kpis.qos_percent, 1),
            round(candidate.kpis.idle_percent, 2),
            round(candidate.score, 1),
        ]
        for candidate in report.candidates
    ]
    print(
        format_table(
            ["window (h)", "confidence", "QoS %", "idle %", "score"],
            rows,
            title="Training sweep over (window size x confidence)",
        )
    )
    best = report.best.config
    print(
        f"\nSelected configuration: window = {best.window_s // HOUR}h, "
        f"confidence = {best.confidence}\n"
        "(the paper's production choice -- w = 7h, c = 0.1 -- prioritises\n"
        "quality of service within the operational-cost envelope)"
    )


if __name__ == "__main__":
    main()
