"""The process-global observability switch.

Instrumented hot paths do::

    from repro.observability.runtime import OBS

    if OBS.enabled:
        OBS.metrics.counter("engine.events_dispatched").inc()

``OBS`` is a singleton whose identity never changes -- modules bind it at
import time and the disabled cost is one attribute load plus a falsy
check.  ``enable``/``disable`` (or the :func:`observed` context manager)
swap the tracer and registry behind it.

The switch is per process.  ``repro.parallel`` workers start disabled and
are enabled per chunk by the pool plumbing when the parent was enabled at
submit time; their registries ride back with the chunk results and are
merged into the parent registry in submission order.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import NULL_TRACER, NullTracer, Tracer


class _Runtime:
    """The mutable singleton behind ``OBS``."""

    __slots__ = ("enabled", "tracer", "metrics", "slo")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer: Union[Tracer, NullTracer] = NULL_TRACER
        self.metrics: Optional[MetricsRegistry] = None
        #: Optional :class:`repro.observability.slo.SloMonitor`; when set,
        #: the engine event loops tick it so alerts evaluate continuously.
        self.slo = None


OBS = _Runtime()


def enable(
    tracer: Optional[Union[Tracer, NullTracer]] = None,
    metrics: Optional[MetricsRegistry] = None,
    slo=None,
) -> _Runtime:
    """Turn instrumentation on; returns the runtime for export access.

    Pass ``tracer=NULL_TRACER`` to collect metrics without span records
    (fleet-scale runs where per-event spans would dominate memory).
    Pass ``slo=SloMonitor(...)`` to evaluate burn-rate alerts as the
    clock advances; workers always start without one (alerting is the
    parent's job, windows merge back with the registry).
    """
    OBS.tracer = Tracer() if tracer is None else tracer
    OBS.metrics = MetricsRegistry() if metrics is None else metrics
    OBS.slo = slo
    OBS.enabled = True
    return OBS


def disable() -> None:
    """Back to the zero-overhead default."""
    OBS.enabled = False
    OBS.tracer = NULL_TRACER
    OBS.metrics = None
    OBS.slo = None


@contextmanager
def observed(
    tracer: Optional[Union[Tracer, NullTracer]] = None,
    metrics: Optional[MetricsRegistry] = None,
    slo=None,
) -> Iterator[_Runtime]:
    """Enable observability for one block, restoring the prior state."""
    previous = (OBS.enabled, OBS.tracer, OBS.metrics, OBS.slo)
    try:
        yield enable(tracer=tracer, metrics=metrics, slo=slo)
    finally:
        OBS.enabled, OBS.tracer, OBS.metrics, OBS.slo = previous
