"""Property-based tests: simulator invariants on arbitrary small fleets.

Whatever the workload, for every policy:

* the four quadrants of Definition 2.2 partition fleet time exactly;
* every session start inside the window is classified exactly once;
* idle components are non-negative and only the proactive policy produces
  pre-warm idle;
* reactive runs never touch proactive workflow counters.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.simulation import SimulationSettings, simulate_region
from repro.types import SECONDS_PER_DAY, SECONDS_PER_HOUR, ActivityTrace, Session

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR

SPAN_DAYS = 32
EVAL = SimulationSettings(
    eval_start=30 * DAY,
    eval_end=31 * DAY,
    warmup_s=DAY,
    resume_latency_jitter_s=0,
)


@st.composite
def random_fleet(draw):
    """2-5 databases with arbitrary session structures."""
    n = draw(st.integers(min_value=2, max_value=5))
    traces = []
    for i in range(n):
        seed = draw(st.integers(min_value=0, max_value=10**6))
        rng = random.Random(seed)
        sessions = []
        cursor = rng.randint(0, 3 * DAY)
        while cursor < SPAN_DAYS * DAY - HOUR:
            duration = rng.randint(60, 12 * HOUR)
            end = min(cursor + duration, SPAN_DAYS * DAY)
            sessions.append(Session(cursor, end))
            cursor = end + rng.randint(60, 3 * DAY)
        created = rng.choice([0, sessions[0].start if sessions else 0])
        traces.append(ActivityTrace(f"db-{i}", sessions, created_at=created))
    return traces


@settings(max_examples=25, deadline=None)
@given(random_fleet(), st.sampled_from(["reactive", "proactive"]))
def test_accounting_partitions_fleet_time(traces, policy):
    kpis = simulate_region(traces, policy, settings=EVAL).kpis()
    assert kpis.accounted_seconds() == kpis.fleet_seconds
    assert kpis.used_s >= 0
    assert kpis.saved_s >= 0
    assert kpis.unavailable_s >= 0
    assert kpis.idle.logical_pause_s >= 0
    assert kpis.idle.correct_proactive_s >= 0
    assert kpis.idle.wrong_proactive_s >= 0


@settings(max_examples=25, deadline=None)
@given(random_fleet())
def test_every_login_classified_once(traces):
    expected = sum(
        1
        for trace in traces
        for session in trace.sessions
        if EVAL.eval_start <= session.start < EVAL.eval_end
    )
    for policy in ("reactive", "proactive"):
        kpis = simulate_region(traces, policy, settings=EVAL).kpis()
        assert kpis.logins.total == expected


@settings(max_examples=20, deadline=None)
@given(random_fleet())
def test_reactive_never_prewarms(traces):
    kpis = simulate_region(traces, "reactive", settings=EVAL).kpis()
    assert kpis.workflows.proactive_resumes == 0
    assert kpis.idle.correct_proactive_s == 0
    assert kpis.idle.wrong_proactive_s == 0


@settings(max_examples=20, deadline=None)
@given(random_fleet())
def test_demand_is_served_or_unavailable(traces):
    """used + unavailable equals total demand under any policy."""
    demand = sum(
        trace.active_seconds(EVAL.eval_start, EVAL.eval_end) for trace in traces
    )
    for policy in ("reactive", "proactive"):
        kpis = simulate_region(traces, policy, settings=EVAL).kpis()
        assert kpis.used_s + kpis.unavailable_s == demand


@settings(max_examples=15, deadline=None)
@given(random_fleet())
def test_proactive_never_loses_to_reactive_on_unavailability(traces):
    """Pre-warming can only remove reactive resumes, never add demand gaps
    beyond what the reactive policy already has... except when a wrong
    physical pause lands earlier; allow equality-or-better on served
    logins aggregated with a small tolerance of one login."""
    reactive = simulate_region(traces, "reactive", settings=EVAL).kpis()
    proactive = simulate_region(traces, "proactive", settings=EVAL).kpis()
    assert proactive.logins.with_resources >= reactive.logins.with_resources - 1
