"""The proactive resume and pause lifecycle of a database (Figure 4).

A serverless database is either resumed, logically paused, or physically
paused; reactive resumes additionally pass through a transient RESUMING
state while the allocation workflow is in flight (the availability gap the
proactive policy shrinks).  This module provides a validated finite state
automaton: every transition is checked against the edges of Figure 4 and
recorded, so the simulator cannot silently corrupt a database's lifecycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import SimulationError
from repro.observability.runtime import OBS


class LifecycleState(enum.Enum):
    """States of the Figure 4 automaton."""

    RESUMED = "resumed"
    LOGICALLY_PAUSED = "logically_paused"
    PHYSICALLY_PAUSED = "physically_paused"
    #: Reactive resume workflow in flight (between demand signal and
    #: effective allocation, Section 2.2).
    RESUMING = "resuming"


class LifecycleTransition(enum.Enum):
    """Named edges of Figure 4 (plus the transient reactive-resume edges)."""

    #: Resumed -> logically paused: the database went idle and activity is
    #: predicted soon (or the database is new) -- Algorithm 1 line 12.
    IDLE_TO_LOGICAL = "idle_to_logical"
    #: Resumed -> physically paused: idle and no activity predicted within
    #: the logical pause duration -- Algorithm 1 lines 10-11.
    IDLE_TO_PHYSICAL = "idle_to_physical"
    #: Logically paused -> resumed: customer activity returned while the
    #: resources were still allocated -- Algorithm 1 lines 21-23, 28.
    LOGICAL_TO_RESUMED = "logical_to_resumed"
    #: Logically paused -> physically paused: the pause expired with no
    #: activity in sight -- Algorithm 1 lines 26-29.
    LOGICAL_TO_PHYSICAL = "logical_to_physical"
    #: Physically paused -> logically paused: proactive resume (pre-warm)
    #: ahead of predicted activity -- Algorithm 5 lines 7-8.
    PROACTIVE_RESUME = "proactive_resume"
    #: Physically paused -> resuming: reactive resume triggered by a login
    #: while resources were reclaimed.
    REACTIVE_RESUME_START = "reactive_resume_start"
    #: Resuming -> resumed: the allocation workflow completed.
    REACTIVE_RESUME_COMPLETE = "reactive_resume_complete"
    #: Physically paused -> logically paused: a system maintenance
    #: operation needs the resources; not customer activity, so it is
    #: excluded from history and predictions (Section 3.3).
    MAINTENANCE_RESUME = "maintenance_resume"


#: Legal (from_state, transition, to_state) edges.
_EDGES = {
    LifecycleTransition.IDLE_TO_LOGICAL: (
        LifecycleState.RESUMED,
        LifecycleState.LOGICALLY_PAUSED,
    ),
    LifecycleTransition.IDLE_TO_PHYSICAL: (
        LifecycleState.RESUMED,
        LifecycleState.PHYSICALLY_PAUSED,
    ),
    LifecycleTransition.LOGICAL_TO_RESUMED: (
        LifecycleState.LOGICALLY_PAUSED,
        LifecycleState.RESUMED,
    ),
    LifecycleTransition.LOGICAL_TO_PHYSICAL: (
        LifecycleState.LOGICALLY_PAUSED,
        LifecycleState.PHYSICALLY_PAUSED,
    ),
    LifecycleTransition.PROACTIVE_RESUME: (
        LifecycleState.PHYSICALLY_PAUSED,
        LifecycleState.LOGICALLY_PAUSED,
    ),
    LifecycleTransition.REACTIVE_RESUME_START: (
        LifecycleState.PHYSICALLY_PAUSED,
        LifecycleState.RESUMING,
    ),
    LifecycleTransition.REACTIVE_RESUME_COMPLETE: (
        LifecycleState.RESUMING,
        LifecycleState.RESUMED,
    ),
    LifecycleTransition.MAINTENANCE_RESUME: (
        LifecycleState.PHYSICALLY_PAUSED,
        LifecycleState.LOGICALLY_PAUSED,
    ),
}


#: Stable integer codes for each lifecycle state, used by the columnar
#: engine's ``int8`` phase column (:mod:`repro.simulation.columnar`).  The
#: codes are part of the struct-of-arrays layout contract documented in
#: ``docs/fleet_scale.md``; do not renumber.
STATE_CODES: Dict[LifecycleState, int] = {
    LifecycleState.RESUMED: 0,
    LifecycleState.LOGICALLY_PAUSED: 1,
    LifecycleState.PHYSICALLY_PAUSED: 2,
    LifecycleState.RESUMING: 3,
}

#: Inverse of :data:`STATE_CODES`: ``STATE_FROM_CODE[code]`` is the state.
STATE_FROM_CODE: Tuple[LifecycleState, ...] = tuple(
    state for state, _ in sorted(STATE_CODES.items(), key=lambda item: item[1])
)


def transition_edge_codes() -> Dict[LifecycleTransition, Tuple[int, int]]:
    """The Figure 4 edge table in integer form: transition ->
    (from_code, to_code).  The columnar engine validates its array-based
    transitions against exactly the same edges as :class:`Lifecycle`."""
    return {
        transition: (STATE_CODES[src], STATE_CODES[dst])
        for transition, (src, dst) in _EDGES.items()
    }


@dataclass(frozen=True)
class TransitionRecord:
    """One logged lifecycle transition."""

    time: int
    transition: LifecycleTransition
    from_state: LifecycleState
    to_state: LifecycleState


class Lifecycle:
    """Tracks and validates the state of one database over time."""

    def __init__(
        self,
        database_id: str,
        initial_state: LifecycleState = LifecycleState.RESUMED,
        record_log: bool = True,
    ):
        self.database_id = database_id
        self.state = initial_state
        self._record_log = record_log
        self.log: List[TransitionRecord] = []
        self._last_transition_time: int = -1

    def apply(self, transition: LifecycleTransition, now: int) -> LifecycleState:
        """Apply a transition at time ``now``; raises on illegal edges."""
        from_state, to_state = _EDGES[transition]
        if self.state is not from_state:
            raise SimulationError(
                f"{self.database_id}: illegal transition {transition.value} "
                f"from {self.state.value} at t={now} (requires {from_state.value})"
            )
        if now < self._last_transition_time:
            raise SimulationError(
                f"{self.database_id}: transition at t={now} is before the "
                f"previous transition at t={self._last_transition_time}"
            )
        if self._record_log:
            self.log.append(TransitionRecord(now, transition, self.state, to_state))
        if OBS.enabled:
            OBS.metrics.counter(f"lifecycle.transition.{transition.value}").inc()
            span = OBS.tracer.current_span
            if span is not None:
                span.set_attribute("transition", transition.value)
                span.set_attribute("db", self.database_id)
        self.state = to_state
        self._last_transition_time = now
        return to_state

    def can_apply(self, transition: LifecycleTransition) -> bool:
        """Whether the transition is legal from the current state."""
        return self.state is _EDGES[transition][0]

    @property
    def allocated(self) -> bool:
        """Whether resources are currently allocated (A(d, t) = 1)."""
        return self.state in (
            LifecycleState.RESUMED,
            LifecycleState.LOGICALLY_PAUSED,
        )


def legal_transitions(state: LifecycleState) -> Tuple[LifecycleTransition, ...]:
    """All transitions legal from ``state`` (introspection for tests/docs)."""
    return tuple(t for t, (src, _) in _EDGES.items() if src is state)
