"""Tests for the capacity-constrained cluster substrate."""

import pytest

from repro.cluster import Cluster, Node
from repro.errors import CapacityError


class TestNode:
    def test_capacity_validation(self):
        with pytest.raises(CapacityError):
            Node("n", 0)

    def test_place_allocate_release(self):
        node = Node("n", 2)
        node.place("a")
        node.allocate("a")
        assert node.free_slots == 1
        assert node.utilization == 0.5
        node.release("a")
        assert node.free_slots == 2

    def test_allocate_non_resident_rejected(self):
        node = Node("n", 2)
        with pytest.raises(CapacityError):
            node.allocate("ghost")

    def test_double_allocate_rejected(self):
        node = Node("n", 2)
        node.place("a")
        node.allocate("a")
        with pytest.raises(CapacityError):
            node.allocate("a")

    def test_full_node_rejects_unless_forced(self):
        node = Node("n", 1)
        node.place("a")
        node.place("b")
        node.allocate("a")
        with pytest.raises(CapacityError):
            node.allocate("b")
        node.allocate("b", force=True)
        assert node.free_slots == -1

    def test_cannot_evict_allocated(self):
        node = Node("n", 1)
        node.place("a")
        node.allocate("a")
        with pytest.raises(CapacityError):
            node.evict("a")

    def test_release_unallocated_rejected(self):
        node = Node("n", 1)
        node.place("a")
        with pytest.raises(CapacityError):
            node.release("a")


class TestCluster:
    def test_place_least_loaded(self):
        cluster = Cluster(n_nodes=3, node_capacity=4)
        for i in range(6):
            cluster.place(f"db-{i}")
        residents = [len(n.residents) for n in cluster.nodes]
        assert residents == [2, 2, 2]

    def test_double_placement_rejected(self):
        cluster = Cluster(n_nodes=2)
        cluster.place("a")
        with pytest.raises(CapacityError):
            cluster.place("a")

    def test_allocate_returns_latency(self):
        cluster = Cluster(
            n_nodes=1, resume_latency_s=45, resume_latency_jitter_s=0
        )
        cluster.place("a")
        outcome = cluster.allocate("a")
        assert outcome.latency_s == 45
        assert not outcome.moved
        assert cluster.is_allocated("a")

    def test_jitter_bounds(self):
        cluster = Cluster(n_nodes=1, resume_latency_s=45, resume_latency_jitter_s=15)
        for i in range(20):
            cluster.place(f"db-{i}")
            outcome = cluster.allocate(f"db-{i}")
            assert 45 <= outcome.latency_s <= 60

    def test_move_on_full_node(self):
        """Section 1: a resume on a full node moves the database to another
        node at a higher latency."""
        cluster = Cluster(
            n_nodes=2,
            node_capacity=1,
            resume_latency_s=45,
            resume_latency_jitter_s=0,
            move_latency_s=180,
        )
        cluster.place("a", cluster.nodes[0])
        cluster.place("b", cluster.nodes[0])  # same node, now crowded
        cluster.allocate("a")
        outcome = cluster.allocate("b")
        assert outcome.moved
        assert outcome.latency_s == 45 + 180
        assert cluster.node_of("b").node_id != "node-000"
        assert cluster.moves == 1

    def test_oversubscription_when_cluster_full(self):
        cluster = Cluster(
            n_nodes=1,
            node_capacity=1,
            resume_latency_s=45,
            resume_latency_jitter_s=0,
            move_latency_s=180,
        )
        cluster.place("a")
        cluster.place("b")
        cluster.allocate("a")
        outcome = cluster.allocate("b")
        assert outcome.latency_s == 45 + 360
        assert cluster.total_allocated == 2  # over capacity, tracked

    def test_release_frees_capacity(self):
        cluster = Cluster(n_nodes=1, node_capacity=1)
        cluster.place("a")
        cluster.allocate("a")
        cluster.release("a")
        assert not cluster.is_allocated("a")
        cluster.place("b")
        assert not cluster.allocate("b").moved

    def test_unplaced_lookup_rejected(self):
        cluster = Cluster(n_nodes=1)
        with pytest.raises(CapacityError):
            cluster.node_of("ghost")

    def test_needs_at_least_one_node(self):
        with pytest.raises(CapacityError):
            Cluster(n_nodes=0)
