"""Monitoring rollups and a terminal dashboard (the PowerBI substitute).

The paper's design plugs ProRP telemetry into PowerBI monitoring tools
(Section 3.1).  This module computes the time-series rollups an operator
dashboard would show -- logins, QoS, and workflow volumes per bucket --
straight from the telemetry store, and renders them as sparklines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ProRPError
from repro.telemetry.events import Component
from repro.telemetry.store import TelemetryStore

#: Eight-level block characters for sparklines.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class RollupBucket:
    """One dashboard time bucket."""

    start: int
    logins: int = 0
    reactive_resumes: int = 0
    proactive_resumes: int = 0
    physical_pauses: int = 0
    logical_pauses: int = 0

    @property
    def qos_percent(self) -> float:
        """% of the bucket's logins that did not need a reactive resume."""
        if self.logins == 0:
            return 100.0
        served = max(0, self.logins - self.reactive_resumes)
        return 100.0 * served / self.logins


def kpi_rollup(
    store: TelemetryStore, start: int, end: int, bucket_s: int
) -> List[RollupBucket]:
    """Aggregate the telemetry stream into fixed-width buckets."""
    if bucket_s <= 0:
        raise ProRPError("bucket width must be positive")
    if end <= start:
        raise ProRPError("rollup window must be non-empty")
    n = (end - start + bucket_s - 1) // bucket_s
    counters = [dict.fromkeys(
        ("logins", "reactive_resumes", "proactive_resumes",
         "physical_pauses", "logical_pauses"), 0,
    ) for _ in range(n)]
    for event in store.scan(start=start, end=end):
        bucket = counters[(event.time - start) // bucket_s]
        if event.component is Component.ACTIVITY_TRACKING:
            if event.payload.get("event_type") == 1:
                bucket["logins"] += 1
        elif event.component is Component.LIFECYCLE:
            kind = event.payload.get("workflow")
            key = f"{kind}s" if kind else None
            if key in bucket:
                bucket[key] += 1
    return [
        RollupBucket(start=start + i * bucket_s, **counts)
        for i, counts in enumerate(counters)
    ]


def sparkline(values: Sequence[float]) -> str:
    """Render a sequence as a unicode sparkline (empty input -> '')."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(values)
    span = hi - lo
    out = []
    for value in values:
        index = int((value - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[index])
    return "".join(out)


def render_dashboard(rollups: Sequence[RollupBucket], title: str = "ProRP") -> str:
    """The operator dashboard: one sparkline per metric plus totals."""
    if not rollups:
        return f"{title}: no data"
    metrics = [
        ("logins", [b.logins for b in rollups]),
        ("QoS %", [b.qos_percent for b in rollups]),
        ("reactive resumes", [b.reactive_resumes for b in rollups]),
        ("proactive resumes", [b.proactive_resumes for b in rollups]),
        ("physical pauses", [b.physical_pauses for b in rollups]),
        ("logical pauses", [b.logical_pauses for b in rollups]),
    ]
    width = max(len(name) for name, _ in metrics)
    lines = [f"{title} — {len(rollups)} buckets"]
    for name, series in metrics:
        total = sum(series)
        if name == "QoS %":
            summary = f"min {min(series):6.1f}"
        else:
            summary = f"sum {int(total):6d}"
        lines.append(f"{name.rjust(width)}  {sparkline(series)}  {summary}")
    return "\n".join(lines)
