"""Unit and property tests for the B-tree clustered index."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.storage.btree import BTree


class TestBasicOperations:
    def test_empty_tree(self):
        tree = BTree()
        assert len(tree) == 0
        assert tree.min_key() is None
        assert tree.max_key() is None
        assert tree.get(1) is None
        assert 1 not in tree
        assert list(tree.items()) == []

    def test_insert_and_get(self):
        tree = BTree()
        tree.insert(5, "five")
        tree.insert(3, "three")
        tree.insert(8, "eight")
        assert len(tree) == 3
        assert tree.get(5) == "five"
        assert tree.get(3) == "three"
        assert tree.get(8) == "eight"
        assert tree.get(4) is None
        assert 3 in tree and 4 not in tree

    def test_insert_duplicate_raises(self):
        tree = BTree()
        tree.insert(1, "a")
        with pytest.raises(DuplicateKeyError):
            tree.insert(1, "b")
        assert tree.get(1) == "a"
        assert len(tree) == 1

    def test_duplicate_raised_in_deep_tree(self):
        tree = BTree(order=3)
        for i in range(100):
            tree.insert(i, i)
        for i in range(100):
            with pytest.raises(DuplicateKeyError):
                tree.insert(i, -1)
        assert len(tree) == 100

    def test_upsert(self):
        tree = BTree()
        assert tree.upsert(1, "a") is True
        assert tree.upsert(1, "b") is False
        assert tree.get(1) == "b"
        assert len(tree) == 1

    def test_min_max(self):
        tree = BTree(order=3)
        for i in [50, 10, 90, 30, 70]:
            tree.insert(i, i)
        assert tree.min_key() == 10
        assert tree.max_key() == 90

    def test_items_sorted(self):
        tree = BTree(order=3)
        keys = random.Random(1).sample(range(1000), 300)
        for k in keys:
            tree.insert(k, k * 2)
        assert [k for k, _ in tree.items()] == sorted(keys)
        assert all(v == k * 2 for k, v in tree.items())

    def test_order_too_small_rejected(self):
        with pytest.raises(ValueError):
            BTree(order=2)

    def test_height_grows_logarithmically(self):
        tree = BTree(order=7)
        for i in range(500):
            tree.insert(i, i)
        # 500 keys at fan-out >= 4 must fit in few levels.
        assert tree.height() <= 6

    def test_string_keys(self):
        tree = BTree()
        tree.insert("db-2", 2)
        tree.insert("db-1", 1)
        tree.insert("db-10", 10)
        assert [k for k, _ in tree.items()] == ["db-1", "db-10", "db-2"]


class TestDelete:
    def test_delete_from_leaf(self):
        tree = BTree()
        tree.insert(1, "a")
        tree.insert(2, "b")
        assert tree.delete(1) == "a"
        assert len(tree) == 1
        assert tree.get(1) is None
        assert tree.get(2) == "b"

    def test_delete_missing_raises(self):
        tree = BTree()
        tree.insert(1, "a")
        with pytest.raises(KeyNotFoundError):
            tree.delete(2)

    def test_discard_missing_returns_none(self):
        tree = BTree()
        tree.insert(1, "a")
        assert tree.discard(2) is None
        assert tree.discard(1) == "a"
        assert len(tree) == 0

    def test_delete_all_ascending(self):
        tree = BTree(order=3)
        for i in range(200):
            tree.insert(i, i)
        for i in range(200):
            assert tree.delete(i) == i
            tree.check_invariants()
        assert len(tree) == 0

    def test_delete_all_descending(self):
        tree = BTree(order=3)
        for i in range(200):
            tree.insert(i, i)
        for i in reversed(range(200)):
            assert tree.delete(i) == i
            tree.check_invariants()
        assert len(tree) == 0

    def test_delete_shuffled(self):
        rng = random.Random(7)
        tree = BTree(order=5)
        keys = list(range(300))
        rng.shuffle(keys)
        for k in keys:
            tree.insert(k, str(k))
        rng.shuffle(keys)
        for k in keys:
            assert tree.delete(k) == str(k)
            tree.check_invariants()
        assert len(tree) == 0


class TestRangeOperations:
    def _tree(self, keys):
        tree = BTree(order=5)
        for k in keys:
            tree.insert(k, k)
        return tree

    def test_range_inclusive(self):
        tree = self._tree(range(0, 100, 10))
        assert [k for k, _ in tree.range_items(20, 50)] == [20, 30, 40, 50]

    def test_range_exclusive_bounds(self):
        tree = self._tree(range(0, 100, 10))
        got = [k for k, _ in tree.range_items(20, 50, include_lo=False, include_hi=False)]
        assert got == [30, 40]

    def test_range_open_ended(self):
        tree = self._tree(range(5))
        assert [k for k, _ in tree.range_items(lo=3)] == [3, 4]
        assert [k for k, _ in tree.range_items(hi=1)] == [0, 1]
        assert [k for k, _ in tree.range_items()] == [0, 1, 2, 3, 4]

    def test_range_no_match(self):
        tree = self._tree([10, 20, 30])
        assert list(tree.range_items(11, 19)) == []
        assert list(tree.range_items(40, 50)) == []

    def test_range_count(self):
        tree = self._tree(range(100))
        assert tree.range_count(10, 19) == 10
        assert tree.range_count() == 100

    def test_delete_range(self):
        tree = self._tree(range(100))
        deleted = tree.delete_range(10, 19)
        assert deleted == 10
        assert len(tree) == 90
        assert tree.range_count(10, 19) == 0
        tree.check_invariants()

    def test_delete_range_exclusive(self):
        tree = self._tree(range(10))
        deleted = tree.delete_range(2, 5, include_lo=False, include_hi=False)
        assert deleted == 2  # keys 3 and 4
        assert [k for k, _ in tree.items()] == [0, 1, 2, 5, 6, 7, 8, 9]


# ---------------------------------------------------------------------------
# Property-based tests against a dict + sorted-list model
# ---------------------------------------------------------------------------


@st.composite
def operations(draw):
    """A random sequence of (op, key) pairs."""
    n = draw(st.integers(min_value=1, max_value=120))
    ops = []
    for _ in range(n):
        op = draw(st.sampled_from(["insert", "delete", "get", "upsert"]))
        key = draw(st.integers(min_value=0, max_value=60))
        ops.append((op, key))
    return ops


@settings(max_examples=200, deadline=None)
@given(operations(), st.integers(min_value=3, max_value=9))
def test_btree_matches_dict_model(ops, order):
    tree = BTree(order=order)
    model = {}
    for op, key in ops:
        if op == "insert":
            if key in model:
                with pytest.raises(DuplicateKeyError):
                    tree.insert(key, key)
            else:
                tree.insert(key, key)
                model[key] = key
        elif op == "upsert":
            tree.upsert(key, key * 10)
            model[key] = key * 10
        elif op == "delete":
            if key in model:
                assert tree.delete(key) == model.pop(key)
            else:
                with pytest.raises(KeyNotFoundError):
                    tree.delete(key)
        else:
            assert tree.get(key) == model.get(key)
    tree.check_invariants()
    assert len(tree) == len(model)
    assert list(tree.items()) == sorted(model.items())


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=1000), unique=True, min_size=0, max_size=200),
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=1000),
)
def test_range_items_matches_filter(keys, a, b):
    lo, hi = min(a, b), max(a, b)
    tree = BTree(order=5)
    for k in keys:
        tree.insert(k, k)
    expected = sorted(k for k in keys if lo <= k <= hi)
    assert [k for k, _ in tree.range_items(lo, hi)] == expected


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=500), unique=True, min_size=0, max_size=150),
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=0, max_value=500),
)
def test_delete_range_matches_filter(keys, a, b):
    lo, hi = min(a, b), max(a, b)
    tree = BTree(order=4)
    for k in keys:
        tree.insert(k, k)
    expected_remaining = sorted(k for k in keys if not (lo <= k <= hi))
    deleted = tree.delete_range(lo, hi)
    assert deleted == len(keys) - len(expected_remaining)
    assert [k for k, _ in tree.items()] == expected_remaining
    tree.check_invariants()
