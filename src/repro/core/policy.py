"""The resource allocation policies (Section 4, Algorithm 1).

This module contains the *decision logic* of Algorithm 1 as pure functions
over (time, old-flag, prediction, knobs); the discrete-event simulator wires
them to real histories, predictors, and the control plane.  Keeping the
conditions pure makes the exact semantics of Algorithm 1's guards unit
testable line by line:

* :func:`decide_on_idle` -- lines 10-12 (on becoming idle);
* :func:`logical_pause_wake_time` -- the expiry of the line-19 wait
  condition, computed instead of polled (see DESIGN.md);
* :func:`decide_after_logical_pause` -- line 26 (after the wait expires and
  the prediction was refreshed).

The reactive baseline (Section 2.2) always logically pauses on idle and
physically pauses after ``l`` of idleness; the optimal policy (Figure 2(c))
is the clairvoyant bounding box of demand.
"""

from __future__ import annotations

import enum

from repro.observability.runtime import OBS
from repro.types import PredictedActivity


class PolicyKind(enum.Enum):
    """The three policies of Figure 2, plus the fixed-size provisioning
    the paper's introduction contrasts serverless against: resources are
    always allocated, so QoS is perfect and idle cost is maximal."""

    REACTIVE = "reactive"
    PROACTIVE = "proactive"
    OPTIMAL = "optimal"
    PROVISIONED = "provisioned"


class IdleDecision(enum.Enum):
    """What to do with an idle database."""

    LOGICAL_PAUSE = "logical_pause"
    PHYSICAL_PAUSE = "physical_pause"


def _record_decision(site: str, decision: IdleDecision) -> IdleDecision:
    """Count the decision in the live metrics registry (when enabled)."""
    if OBS.enabled:
        OBS.metrics.counter(f"policy.{site}.{decision.value}").inc()
    return decision


def decide_on_idle(
    now: int,
    old: bool,
    next_activity: PredictedActivity,
    logical_pause_s: int,
) -> IdleDecision:
    """Algorithm 1 lines 10-12: the transition out of RESUMED when idle.

    Physically pause when no customer activity is expected within the
    logical pause duration ``l``: either the predicted start is at least
    ``l`` away, or the database is old yet has no prediction at all
    (``nextActivity.start = 0``).  Otherwise pause logically -- notably for
    every new database, whose history is too short to predict.
    """
    if not next_activity.is_empty and now + logical_pause_s <= next_activity.start:
        return _record_decision("on_idle", IdleDecision.PHYSICAL_PAUSE)
    if old and next_activity.is_empty:
        return _record_decision("on_idle", IdleDecision.PHYSICAL_PAUSE)
    return _record_decision("on_idle", IdleDecision.LOGICAL_PAUSE)


def logical_pause_wake_time(
    now: int,
    pause_start: int,
    old: bool,
    next_activity: PredictedActivity,
    logical_pause_s: int,
) -> int:
    """Earliest time the line-19 wait condition expires (absent activity).

    The condition keeps the database logically paused while any of:

    * ``!old AND now < pauseStart + l`` -- new database waiting out ``l``;
    * ``now < nextActivity.end`` -- the predicted activity window is not
      over yet (the customer may log in late within it);
    * ``now < nextActivity.start < now + l`` -- the predicted activity
      starts soon, so reclaiming would only thrash.

    Since a logical pause is only entered with ``start < now + l`` (lines
    10/26), the third disjunct expires no later than the second, so the wake
    time is the latest applicable deadline among ``pauseStart + l`` (new
    databases) and ``nextActivity.end`` (predicted databases).  Returns a
    time <= now when the condition already fails (immediate re-decision).
    """
    deadlines = []
    if not old:
        deadlines.append(pause_start + logical_pause_s)
    if not next_activity.is_empty:
        if now < next_activity.end:
            deadlines.append(next_activity.end)
        elif now < next_activity.start:  # degenerate start==end prediction
            deadlines.append(next_activity.start)
    if not deadlines:
        return now
    return max(d for d in deadlines)


def decide_after_logical_pause(
    now: int,
    pause_start: int,
    old: bool,
    next_activity: PredictedActivity,
    logical_pause_s: int,
) -> IdleDecision:
    """Algorithm 1 line 26: after the wait expired and the prediction was
    refreshed, physically pause or remain logically paused.

    The new-database clause uses ``pauseStart + l <= now`` (the paper's
    strict ``<`` would busy-loop at the exact boundary its Sleep() never
    hits; see DESIGN.md).
    """
    if not old and pause_start + logical_pause_s <= now:
        return _record_decision("after_logical_pause", IdleDecision.PHYSICAL_PAUSE)
    if not next_activity.is_empty and now + logical_pause_s <= next_activity.start:
        return _record_decision("after_logical_pause", IdleDecision.PHYSICAL_PAUSE)
    if old and next_activity.is_empty:
        return _record_decision("after_logical_pause", IdleDecision.PHYSICAL_PAUSE)
    return _record_decision("after_logical_pause", IdleDecision.LOGICAL_PAUSE)


def reactive_idle_decision() -> IdleDecision:
    """The reactive policy (Section 2.2) always logically pauses on idle."""
    return IdleDecision.LOGICAL_PAUSE


def reactive_wake_time(pause_start: int, logical_pause_s: int) -> int:
    """Reactive logical pauses always last exactly ``l``."""
    return pause_start + logical_pause_s


def prediction_expired(next_activity: PredictedActivity, now: int) -> bool:
    """Algorithm 1 line 7: refresh the prediction only when the previous
    predicted activity is over (``nextActivity.end < now``)."""
    return next_activity.end < now
