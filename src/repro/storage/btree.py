"""An in-memory B-tree used as the clustered index of every table.

The paper stores database history in a table with "a clustered B-tree-based
index" on ``time_snapshot`` (Section 5) and relies on its O(log n) point and
range operations for the complexity analysis of Algorithms 2-4.  This module
implements that index from scratch:

* ``insert`` / ``delete`` / ``get`` in O(log n),
* ``range_items(lo, hi)`` returning key-ordered items in O(log n + m),
* ``min_key`` / ``max_key`` in O(log n),
* ``delete_range`` in O(log n + m).

Keys may be any totally ordered type; in this project they are integers
(epoch seconds) or strings (database identifiers).
"""

from __future__ import annotations

import bisect
from typing import Any, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.observability.runtime import OBS

K = TypeVar("K")
V = TypeVar("V")

#: Default maximum number of keys per node.  2*t - 1 with minimum degree
#: t = 32; large fan-out keeps trees shallow for the history sizes the
#: paper reports (hundreds to thousands of tuples, Figure 10(a)).
DEFAULT_ORDER = 63


class _Node(Generic[K, V]):
    """One B-tree node: sorted keys with payloads and (for internal nodes)
    child pointers, with ``len(children) == len(keys) + 1``."""

    __slots__ = ("keys", "values", "children")

    def __init__(self) -> None:
        self.keys: List[K] = []
        self.values: List[V] = []
        self.children: List["_Node[K, V]"] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTree(Generic[K, V]):
    """A classic (not B+) B-tree mapping unique keys to values."""

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 3:
            raise ValueError(f"B-tree order must be >= 3, got {order}")
        self._order = order
        # Minimum number of keys in a non-root node.
        self._min_keys = (order - 1) // 2
        self._root: _Node[K, V] = _Node()
        self._size = 0

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: K) -> bool:
        return self._find(key) is not None

    @property
    def order(self) -> int:
        return self._order

    def height(self) -> int:
        """Number of levels (1 for a tree that is a single leaf)."""
        levels = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            levels += 1
        return levels

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Return the value for ``key`` or ``default`` if absent."""
        found = self._find(key)
        return default if found is None else found

    def _find(self, key: K) -> Optional[V]:
        node = self._root
        while True:
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                return node.values[idx]
            if node.is_leaf:
                return None
            node = node.children[idx]

    def min_key(self) -> Optional[K]:
        """Smallest key, or None when empty (Algorithm 3's MIN query)."""
        if self._size == 0:
            return None
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]

    def max_key(self) -> Optional[K]:
        """Largest key, or None when empty."""
        if self._size == 0:
            return None
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1]

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def insert(self, key: K, value: V) -> None:
        """Insert a unique key.  Raises DuplicateKeyError if present."""
        if OBS.enabled:
            OBS.metrics.counter("btree.inserts").inc()
        root = self._root
        if len(root.keys) == self._order:
            new_root: _Node[K, V] = _Node()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            root = new_root
        self._insert_nonfull(root, key, value)
        self._size += 1

    def upsert(self, key: K, value: V) -> bool:
        """Insert or overwrite; returns True if the key was newly inserted."""
        node = self._root
        while True:
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx] = value
                return False
            if node.is_leaf:
                break
            node = node.children[idx]
        self.insert(key, value)
        return True

    def _split_child(self, parent: _Node[K, V], idx: int) -> None:
        child = parent.children[idx]
        mid = len(child.keys) // 2
        sibling: _Node[K, V] = _Node()
        sibling.keys = child.keys[mid + 1 :]
        sibling.values = child.values[mid + 1 :]
        if not child.is_leaf:
            sibling.children = child.children[mid + 1 :]
            child.children = child.children[: mid + 1]
        parent.keys.insert(idx, child.keys[mid])
        parent.values.insert(idx, child.values[mid])
        parent.children.insert(idx + 1, sibling)
        child.keys = child.keys[:mid]
        child.values = child.values[:mid]

    def _insert_nonfull(self, node: _Node[K, V], key: K, value: V) -> None:
        while True:
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                raise DuplicateKeyError(f"duplicate key {key!r}")
            if node.is_leaf:
                node.keys.insert(idx, key)
                node.values.insert(idx, value)
                return
            child = node.children[idx]
            if len(child.keys) == self._order:
                self._split_child(node, idx)
                if key == node.keys[idx]:
                    raise DuplicateKeyError(f"duplicate key {key!r}")
                if key > node.keys[idx]:
                    idx += 1
            node = node.children[idx]

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------

    def delete(self, key: K) -> V:
        """Delete ``key`` and return its value; raises KeyNotFoundError."""
        if OBS.enabled:
            OBS.metrics.counter("btree.deletes").inc()
        try:
            value = self._delete(self._root, key)
        finally:
            # Collapse a key-less root even when the key was absent: the
            # descent may still have merged the root's children, and a
            # later delete must not find a 0-key internal root.
            if not self._root.keys and self._root.children:
                self._root = self._root.children[0]
        self._size -= 1
        return value

    def discard(self, key: K) -> Optional[V]:
        """Delete ``key`` if present; return its value or None."""
        try:
            return self.delete(key)
        except KeyNotFoundError:
            return None

    def _delete(self, node: _Node[K, V], key: K) -> V:
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            if node.is_leaf:
                node.keys.pop(idx)
                return node.values.pop(idx)
            return self._delete_internal(node, idx)
        if node.is_leaf:
            raise KeyNotFoundError(f"key {key!r} not found")
        child_idx = idx
        self._ensure_child_fill(node, child_idx)
        # _ensure_child_fill may have merged children / moved keys; redo the
        # descent decision against the updated separator keys.
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            return self._delete_internal(node, idx)
        return self._delete(node.children[idx], key)

    def _delete_internal(self, node: _Node[K, V], idx: int) -> V:
        """Delete the separator key at ``idx`` of an internal node."""
        key = node.keys[idx]
        value = node.values[idx]
        left, right = node.children[idx], node.children[idx + 1]
        if len(left.keys) > self._min_keys:
            pred_key, pred_val = self._pop_max(left)
            node.keys[idx], node.values[idx] = pred_key, pred_val
        elif len(right.keys) > self._min_keys:
            succ_key, succ_val = self._pop_min(right)
            node.keys[idx], node.values[idx] = succ_key, succ_val
        else:
            # Both children are minimal: merge them around the separator and
            # re-delete the separator key inside the merged child.
            self._merge_children(node, idx)
            self._delete(node.children[idx], key)
        return value

    def _pop_max(self, node: _Node[K, V]) -> Tuple[K, V]:
        while not node.is_leaf:
            self._ensure_child_fill(node, len(node.children) - 1)
            node = node.children[-1]
        return node.keys.pop(), node.values.pop()

    def _pop_min(self, node: _Node[K, V]) -> Tuple[K, V]:
        while not node.is_leaf:
            self._ensure_child_fill(node, 0)
            node = node.children[0]
        key = node.keys.pop(0)
        return key, node.values.pop(0)

    def _ensure_child_fill(self, node: _Node[K, V], idx: int) -> None:
        """Guarantee children[idx] has more than the minimum keys so a
        recursive delete cannot underflow it."""
        child = node.children[idx]
        if len(child.keys) > self._min_keys:
            return
        if idx > 0 and len(node.children[idx - 1].keys) > self._min_keys:
            self._rotate_right(node, idx - 1)
        elif (
            idx + 1 < len(node.children)
            and len(node.children[idx + 1].keys) > self._min_keys
        ):
            self._rotate_left(node, idx)
        elif idx > 0:
            self._merge_children(node, idx - 1)
        else:
            self._merge_children(node, idx)

    def _rotate_right(self, node: _Node[K, V], idx: int) -> None:
        """Move a key from children[idx] through the separator into
        children[idx + 1]."""
        left, right = node.children[idx], node.children[idx + 1]
        right.keys.insert(0, node.keys[idx])
        right.values.insert(0, node.values[idx])
        node.keys[idx] = left.keys.pop()
        node.values[idx] = left.values.pop()
        if not left.is_leaf:
            right.children.insert(0, left.children.pop())

    def _rotate_left(self, node: _Node[K, V], idx: int) -> None:
        """Move a key from children[idx + 1] through the separator into
        children[idx]."""
        left, right = node.children[idx], node.children[idx + 1]
        left.keys.append(node.keys[idx])
        left.values.append(node.values[idx])
        node.keys[idx] = right.keys.pop(0)
        node.values[idx] = right.values.pop(0)
        if not right.is_leaf:
            left.children.append(right.children.pop(0))

    def _merge_children(self, node: _Node[K, V], idx: int) -> None:
        """Merge children[idx], separator idx, children[idx + 1]."""
        left, right = node.children[idx], node.children[idx + 1]
        left.keys.append(node.keys.pop(idx))
        left.values.append(node.values.pop(idx))
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        left.children.extend(right.children)
        node.children.pop(idx + 1)

    # ------------------------------------------------------------------
    # Range operations
    # ------------------------------------------------------------------

    def items(self) -> Iterator[Tuple[K, V]]:
        """All items in key order."""
        yield from self._iter_node(self._root)

    def _iter_node(self, node: _Node[K, V]) -> Iterator[Tuple[K, V]]:
        if node.is_leaf:
            yield from zip(node.keys, node.values)
            return
        for i, key in enumerate(node.keys):
            yield from self._iter_node(node.children[i])
            yield key, node.values[i]
        yield from self._iter_node(node.children[-1])

    def range_items(
        self,
        lo: Optional[K] = None,
        hi: Optional[K] = None,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Iterator[Tuple[K, V]]:
        """Items with lo <= key <= hi (bounds optional / exclusivizable).

        This is the range query used by Algorithm 3 (delete range) and
        Algorithm 4 (MIN/MAX over a window of a previous day).
        """
        # Counted eagerly (not in the generator body) so a scan that is
        # requested but never consumed still shows up in the registry.
        if OBS.enabled:
            OBS.metrics.counter("btree.range_scans").inc()
        return self._range_node(self._root, lo, hi, include_lo, include_hi)

    def _range_node(
        self,
        node: _Node[K, V],
        lo: Optional[K],
        hi: Optional[K],
        include_lo: bool,
        include_hi: bool,
    ) -> Iterator[Tuple[K, V]]:
        if lo is None:
            start = 0
        elif include_lo:
            start = bisect.bisect_left(node.keys, lo)
        else:
            start = bisect.bisect_right(node.keys, lo)
        if hi is None:
            stop = len(node.keys)
        elif include_hi:
            stop = bisect.bisect_right(node.keys, hi)
        else:
            stop = bisect.bisect_left(node.keys, hi)
        if node.is_leaf:
            for i in range(start, stop):
                yield node.keys[i], node.values[i]
            return
        for i in range(start, stop):
            yield from self._range_node(
                node.children[i], lo, hi, include_lo, include_hi
            )
            yield node.keys[i], node.values[i]
        yield from self._range_node(
            node.children[stop], lo, hi, include_lo, include_hi
        )

    def range_count(self, lo: Optional[K] = None, hi: Optional[K] = None) -> int:
        """Number of keys in the inclusive range [lo, hi]."""
        return sum(1 for _ in self.range_items(lo, hi))

    def delete_range(
        self,
        lo: Optional[K] = None,
        hi: Optional[K] = None,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> int:
        """Delete every key in the range; returns the number deleted."""
        doomed = [
            key for key, _ in self.range_items(lo, hi, include_lo, include_hi)
        ]
        for key in doomed:
            self.delete(key)
        return len(doomed)

    # ------------------------------------------------------------------
    # Validation (used by tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert structural B-tree invariants; raises AssertionError."""
        size = self._check_node(self._root, is_root=True, lo=None, hi=None)
        assert size == self._size, f"size mismatch: counted {size}, recorded {self._size}"

    def _check_node(
        self,
        node: _Node[K, V],
        is_root: bool,
        lo: Optional[K],
        hi: Optional[K],
    ) -> int:
        assert len(node.keys) == len(node.values)
        assert len(node.keys) <= self._order
        if not is_root:
            assert len(node.keys) >= self._min_keys, (
                f"underfull node: {len(node.keys)} < {self._min_keys}"
            )
        for a, b in zip(node.keys, node.keys[1:]):
            assert a < b, f"keys out of order: {a!r} >= {b!r}"
        if node.keys:
            if lo is not None:
                assert node.keys[0] > lo
            if hi is not None:
                assert node.keys[-1] < hi
        if node.is_leaf:
            return len(node.keys)
        assert len(node.children) == len(node.keys) + 1
        total = len(node.keys)
        bounds = [lo] + list(node.keys) + [hi]
        depths = set()
        for i, child in enumerate(node.children):
            total += self._check_node(child, False, bounds[i], bounds[i + 1])
            depths.add(_depth(child))
        assert len(depths) == 1, "children at different depths"
        return total


def _depth(node: _Node[Any, Any]) -> int:
    d = 1
    while not node.is_leaf:
        node = node.children[0]
        d += 1
    return d
