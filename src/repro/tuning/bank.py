"""Per-database predictor bank: online selection between prediction policies.

The paper commits every database to one sliding-window detector
(Algorithm 4).  "Serverless in the Wild" showed a *hybrid* policy --
histogram-driven keep-alive windows for applications with regular idle
gaps, falling back to a fixed window otherwise -- beats any single
policy fleet-wide, and survival-analysis models adapt the idle-duration
estimate as idle time elapses.  The :class:`PredictorBank` runs those
three policies side by side per database, scores each against observed
logins with a rolling *prediction regret* (premature-resume cost vs.
late-resume QoS miss), and routes the engine's prediction requests to
the current best policy with hysteresis.

Byte-identity contract: a bank restricted to ``("sliding",)`` delegates
every call to the engine's existing cache + :class:`FastPredictor` path
and performs **no** shadow work -- KPIs, chaos ledgers, and hot-path
counters are bit-for-bit those of a bank-less run (pinned by
``tests/test_tuning.py``).

All non-sliding policies are pure functions of the database's sorted
login-timestamp array -- exactly what :class:`LeanHistory` retains --
so the bank works unchanged on the per-actor, columnar, and lean fleet
engines, and on the serving gateway's registered fleets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.config import ProRPConfig
from repro.errors import ConfigError
from repro.observability.runtime import OBS
from repro.types import PredictedActivity

#: Every policy the bank knows, in priority (tie-break) order.
BANK_POLICIES = ("sliding", "hybrid_histogram", "survival")

_EMPTY = PredictedActivity.none()


@dataclass(frozen=True)
class BankSettings:
    """Scoring and hysteresis knobs for the predictor bank."""

    #: EWMA smoothing factor for per-(database, policy) regret.
    regret_alpha: float = 0.25
    #: A challenger policy must beat the incumbent's regret by this much...
    switch_margin: float = 0.05
    #: ...for this many consecutive scored logins before the bank switches.
    #: Most databases log in about once a day, so this is roughly "two
    #: consecutive days of clearly better predictions".
    switch_after: int = 2
    #: Regret charged when a policy missed the login (no or late prediction):
    #: the database would have resumed reactively (a QoS miss).
    miss_cost: float = 1.0
    #: Weight of premature-resume regret (idle-COGS is cheaper than a miss).
    premature_weight: float = 0.5
    #: How many recent inter-login gaps the gap-based policies look at.
    max_gaps: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.regret_alpha <= 1.0:
            raise ConfigError(
                f"regret_alpha must be in (0, 1], got {self.regret_alpha}"
            )
        if self.switch_margin < 0:
            raise ConfigError(
                f"switch_margin must be >= 0, got {self.switch_margin}"
            )
        if self.switch_after < 1:
            raise ConfigError(
                f"switch_after must be >= 1, got {self.switch_after}"
            )
        if self.miss_cost < 0 or self.premature_weight < 0:
            raise ConfigError("regret costs must be >= 0")
        if self.max_gaps < 2:
            raise ConfigError(f"max_gaps must be >= 2, got {self.max_gaps}")


DEFAULT_BANK_SETTINGS = BankSettings()


def _recent_gaps(logins: np.ndarray, max_gaps: int) -> np.ndarray:
    """Positive inter-login gaps over the most recent logins."""
    if logins.size < 2:
        return logins[:0]
    tail = logins[-(max_gaps + 1):]
    gaps = np.diff(tail)
    return gaps[gaps > 0]


def hybrid_histogram_predict(
    logins: np.ndarray,
    now: int,
    config: ProRPConfig,
    *,
    max_gaps: int = 64,
    min_gaps: int = 6,
    max_cv: float = 1.5,
) -> Optional[PredictedActivity]:
    """Histogram-driven next-activity window ("Serverless in the Wild").

    When the database's recent idle gaps are *representative* (enough
    samples, coefficient of variation under ``max_cv``), the next login
    is expected one typical gap after the last one: the activity window
    spans the 25th..90th percentile of recent gaps.  Returns ``None``
    when the histogram is unrepresentative -- the caller falls back to
    the paper's sliding-window policy, exactly the hybrid's fixed-window
    arm.
    """
    if logins.size < min_gaps + 1:
        return None
    gaps = _recent_gaps(logins, max_gaps)
    if gaps.size < min_gaps:
        return None
    mean = float(gaps.mean())
    if mean <= 0.0 or float(gaps.std()) / mean > max_cv:
        return None
    last = int(logins[-1])
    lo = int(np.percentile(gaps, 25))
    hi = int(np.percentile(gaps, 90))
    start = last + lo
    end = last + max(hi, lo + 1)
    if end <= now:
        return None  # the expected gap already elapsed: histogram is stale
    start = max(start, now)
    inside = np.count_nonzero((gaps >= lo) & (gaps <= hi))
    confidence = float(inside) / float(gaps.size)
    return PredictedActivity(start, max(end, start + 1), confidence)


def survival_predict(
    logins: np.ndarray,
    now: int,
    config: ProRPConfig,
    *,
    max_gaps: int = 64,
    min_gaps: int = 6,
    min_residuals: int = 3,
) -> Optional[PredictedActivity]:
    """Survival-style conditional idle-duration estimate.

    Treat recent inter-login gaps as idle-duration samples; given the
    idle time already *elapsed* since the last login, the conditional
    median residual of the surviving samples (gaps longer than the
    elapsed idle) estimates when the next login lands.  Re-evaluated at
    every prediction refresh, so the estimate hazards forward as idle
    time accrues -- the defining property of the survival model.
    Returns ``None`` when too few samples survive.
    """
    if logins.size < min_gaps + 1:
        return None
    gaps = _recent_gaps(logins, max_gaps)
    if gaps.size < min_gaps:
        return None
    elapsed = max(0, now - int(logins[-1]))
    survivors = gaps[gaps > elapsed]
    if survivors.size < min_residuals:
        return None
    residuals = survivors - elapsed
    start = now + int(np.percentile(residuals, 50))
    end = now + int(np.percentile(residuals, 90))
    confidence = float(survivors.size) / float(gaps.size)
    return PredictedActivity(start, max(end, start + 1), confidence)


#: Pure gap-based policies by name (sliding routes through the engine).
_GAP_POLICIES: Dict[str, Callable[..., Optional[PredictedActivity]]] = {
    "hybrid_histogram": hybrid_histogram_predict,
    "survival": survival_predict,
}


class _DbState:
    """Per-database bank state (selected policy, regret, pending shadows)."""

    __slots__ = ("selected", "regret", "pending", "streak", "scored")

    def __init__(self, n_policies: int, selected: int):
        self.selected = selected
        self.regret = [0.0] * n_policies
        #: Per-policy (made_at, prediction) awaiting the next login.
        self.pending: List[Optional[Tuple[int, PredictedActivity]]] = [
            None
        ] * n_policies
        self.streak = 0
        self.scored = 0


class PredictorBank:
    """Routes per-database predictions to the best-scoring policy.

    The engine calls :meth:`predict` wherever it used to run its sliding
    path directly, handing the bank two closures: ``sliding_fn`` (the
    engine's own cache + FastPredictor path) and ``logins_fn`` (the
    database's sorted login array).  On every observed login the engine
    calls :meth:`observe_login`, which scores each policy's pending
    prediction and re-selects with hysteresis.
    """

    def __init__(
        self,
        policies: Tuple[str, ...],
        config: ProRPConfig,
        settings: Optional[BankSettings] = None,
    ):
        if not policies:
            raise ConfigError("PredictorBank needs at least one policy")
        ordered: List[str] = []
        for name in policies:
            if name not in BANK_POLICIES:
                raise ConfigError(
                    f"unknown predictor policy {name!r} "
                    f"(known: {', '.join(BANK_POLICIES)})"
                )
            if name not in ordered:
                ordered.append(name)
        self.policies: Tuple[str, ...] = tuple(ordered)
        self.config = config
        self.settings = settings or DEFAULT_BANK_SETTINGS
        #: Sliding-only banks are pure delegates: zero shadow work.
        self.sliding_only = self.policies == ("sliding",)
        self._default = (
            self.policies.index("sliding") if "sliding" in self.policies else 0
        )
        self._sliding_index = (
            self.policies.index("sliding") if "sliding" in self.policies else None
        )
        self._dbs: Dict[Hashable, _DbState] = {}
        self.switches = 0

    # -- prediction routing ------------------------------------------------

    def predict(
        self,
        key: Hashable,
        now: int,
        logins_fn: Callable[[], np.ndarray],
        sliding_fn: Callable[[], PredictedActivity],
    ) -> PredictedActivity:
        """The selected policy's prediction; shadows refresh as a side effect."""
        if self.sliding_only:
            return sliding_fn()
        # The sliding arm doubles as the hybrid fallback, so it is always
        # evaluated (through the engine's own cache path).
        sliding = sliding_fn()
        state = self._dbs.get(key)
        if state is None:
            state = _DbState(len(self.policies), self._default)
            self._dbs[key] = state
        logins: Optional[np.ndarray] = None
        s = self.settings
        for i, name in enumerate(self.policies):
            if name == "sliding":
                prediction = sliding
            else:
                if logins is None:
                    logins = logins_fn()
                prediction = _GAP_POLICIES[name](
                    logins, now, self.config, max_gaps=s.max_gaps
                )
                if prediction is None:
                    prediction = sliding  # hybrid fallback to the paper policy
            state.pending[i] = (now, prediction)
        made_at, prediction = state.pending[state.selected]  # type: ignore[misc]
        return prediction

    def selected_policy(self, key: Hashable) -> str:
        """The policy currently routing ``key`` (default before feedback)."""
        state = self._dbs.get(key)
        return self.policies[state.selected if state else self._default]

    # -- regret scoring ----------------------------------------------------

    def _cost(self, made_at: int, prediction: PredictedActivity, t: int) -> float:
        s = self.settings
        empty = prediction.start == 0 and prediction.end == 0
        if empty or prediction.start > t:
            return s.miss_cost  # no/late prediction: a reactive resume
        early = t - max(prediction.start, made_at)
        horizon = max(1, self.config.logical_pause_s)
        return s.premature_weight * min(1.0, early / horizon)

    def observe_login(self, key: Hashable, t: int) -> None:
        """Score pending predictions against an actual login at ``t``."""
        if self.sliding_only:
            return
        state = self._dbs.get(key)
        if state is None:
            return
        s = self.settings
        scored_any = False
        for i, pending in enumerate(state.pending):
            if pending is None:
                continue
            made_at, prediction = pending
            cost = self._cost(made_at, prediction, t)
            state.regret[i] += s.regret_alpha * (cost - state.regret[i])
            state.pending[i] = None
            scored_any = True
            if OBS.enabled:
                OBS.metrics.histogram(
                    "tuning.bank.regret", labels={"policy": self.policies[i]}
                ).observe(cost)
                OBS.metrics.histogram_series(
                    "tuning.bank.regret.window"
                ).observe(t, cost)
        if not scored_any:
            return
        state.scored += 1
        best = min(range(len(self.policies)), key=lambda i: (state.regret[i], i))
        incumbent = state.selected
        if (
            best != incumbent
            and state.regret[incumbent] - state.regret[best] > s.switch_margin
        ):
            state.streak += 1
            if state.streak >= s.switch_after:
                state.selected = best
                state.streak = 0
                self.switches += 1
                if OBS.enabled:
                    OBS.metrics.counter(
                        "tuning.bank.switches",
                        labels={"policy": self.policies[best]},
                    ).inc()
        else:
            state.streak = 0

    # -- reporting ---------------------------------------------------------

    def selection_counts(self) -> Dict[str, int]:
        """How many observed databases each policy currently routes."""
        counts = {name: 0 for name in self.policies}
        for state in self._dbs.values():
            counts[self.policies[state.selected]] += 1
        return counts

    def selection_shares(self) -> Dict[str, float]:
        counts = self.selection_counts()
        total = sum(counts.values())
        if total == 0:
            return {name: 0.0 for name in self.policies}
        return {name: count / total for name, count in counts.items()}

    def publish_shares(self) -> None:
        """Export selection shares as ``tuning.bank.share`` gauges."""
        if not OBS.enabled:
            return
        for name, share in self.selection_shares().items():
            OBS.metrics.gauge(
                "tuning.bank.share", labels={"policy": name}
            ).set(share)
