"""The diagnostics and mitigation runner (Section 7).

Monitors queue depths and workflow progress, retries stuck workflows, and
escalates to an incident when mitigation runs out of attempts -- "in rare
cases, this automatic mitigation process times out or fails, incidents are
triggered and resolved by an on-call engineer".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.controlplane.workflows import WorkflowEngine, WorkflowKind


@dataclass(frozen=True)
class Incident:
    """An escalation to the on-call engineer."""

    time: int
    workflow_id: int
    database_id: str
    kind: WorkflowKind
    reason: str


@dataclass
class QueueSample:
    """One monitoring sample of the engine's queues."""

    time: int
    pending: int
    running: int
    per_kind: Dict[str, int]


class DiagnosticsRunner:
    """Periodically inspects the workflow engine and mitigates."""

    def __init__(
        self,
        engine: WorkflowEngine,
        stuck_after_s: int = 300,
        max_retries: int = 2,
        queue_alert_depth: int = 1000,
    ):
        self._engine = engine
        self._stuck_after_s = stuck_after_s
        self._max_retries = max_retries
        self._queue_alert_depth = queue_alert_depth
        self.samples: List[QueueSample] = []
        self.incidents: List[Incident] = []
        self.mitigations: int = 0

    def run_once(self, now: int) -> None:
        """One monitoring pass: sample queues, mitigate, escalate."""
        self.samples.append(
            QueueSample(
                time=now,
                pending=self._engine.pending_count,
                running=self._engine.running_count,
                per_kind={
                    kind.value: self._engine.queue_depth(kind)
                    for kind in WorkflowKind
                },
            )
        )
        if self._engine.pending_count > self._queue_alert_depth:
            self.incidents.append(
                Incident(
                    time=now,
                    workflow_id=-1,
                    database_id="-",
                    kind=WorkflowKind.PROACTIVE_RESUME,
                    reason=(
                        f"queue depth {self._engine.pending_count} exceeds "
                        f"{self._queue_alert_depth}: queues are not draining"
                    ),
                )
            )
        for workflow in self._engine.stuck_workflows(now, self._stuck_after_s):
            if workflow.retries < self._max_retries:
                self._engine.retry(workflow, now)
                self.mitigations += 1
            else:
                self._engine.fail(workflow, now)
                self.incidents.append(
                    Incident(
                        time=now,
                        workflow_id=workflow.workflow_id,
                        database_id=workflow.database_id,
                        kind=workflow.kind,
                        reason=(
                            f"workflow stuck after {workflow.retries} "
                            "mitigation attempts"
                        ),
                    )
                )

    def queues_drained(self) -> bool:
        return self._engine.drained()
