"""Plain-text table rendering for benchmark/experiment output."""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table (the benches print these so the rows
    match the rows/series the paper reports)."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
    cells: List[List[str]] = [[str(h) for h in headers]]
    cells.extend([_format_cell(value) for value in row] for row in rows)
    widths = [max(len(row[i]) for row in cells) for i in range(columns)]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(separator)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
