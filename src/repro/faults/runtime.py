"""The process-global fault switch, mirroring ``repro.observability.OBS``.

Instrumented fault points do::

    from repro.faults.runtime import FAULTS

    if FAULTS.enabled and FAULTS.injector.should_fire("sql.execute"):
        raise SqlExecutionError("injected: transient statement failure")

``FAULTS`` is a singleton whose identity never changes -- modules bind it
at import time and the disarmed cost is one attribute load plus a falsy
check, the same discipline (and the same <2% overhead budget, see
``benchmarks/bench_micro_faults.py``) as the observability switch.

The switch is per process.  Chaos sweep workers arm it per task inside
the worker function (see ``repro.experiments.chaos``), which is what
makes fault schedules identical across serial and multiprocess
executors: each task's injection is self-contained.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan


class _Runtime:
    """The mutable singleton behind ``FAULTS``."""

    __slots__ = ("enabled", "injector")

    def __init__(self) -> None:
        self.enabled = False
        self.injector: Optional[FaultInjector] = None


FAULTS = _Runtime()


def arm(plan: Optional[FaultPlan] = None, seed: int = 0) -> FaultInjector:
    """Arm fault injection with ``plan``; returns the live injector so the
    caller can read its ledger after the run."""
    injector = FaultInjector(plan, seed=seed)
    FAULTS.injector = injector
    FAULTS.enabled = True
    return injector


def disarm() -> None:
    """Back to the zero-overhead default: no faults fire anywhere."""
    FAULTS.enabled = False
    FAULTS.injector = None


@contextmanager
def chaos(plan: Optional[FaultPlan] = None, seed: int = 0) -> Iterator[FaultInjector]:
    """Arm fault injection for one block, restoring the prior state."""
    previous = (FAULTS.enabled, FAULTS.injector)
    try:
        yield arm(plan, seed=seed)
    finally:
        FAULTS.enabled, FAULTS.injector = previous
