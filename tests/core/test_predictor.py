"""Tests for Algorithm 4: the reference predictor, its behaviour on known
patterns, and equivalence of the three backends (B-tree store, SQL
procedures, vectorised NumPy implementation)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ProRPConfig, Seasonality
from repro.core.fast_predictor import FastPredictor
from repro.core.predictor import predict_next_activity
from repro.sqlengine.procedures import SqlHistoryProcedures
from repro.storage.history import HistoryStore
from repro.types import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_MINUTE,
    EventType,
    PredictedActivity,
)

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR
MIN = SECONDS_PER_MINUTE


def store_with_logins(logins):
    store = HistoryStore()
    for t in logins:
        store.insert_history(t, EventType.ACTIVITY_START)
    return store


class TestDailyPattern:
    """A customer logging in at 09:00 every day for 28 days."""

    def _history(self, login_tod=9 * HOUR, days=28):
        return store_with_logins([d * DAY + login_tod for d in range(days)])

    def test_predicts_nine_am_next_day(self):
        config = ProRPConfig()
        store = self._history()
        now = 27 * DAY + 18 * HOUR  # day 27, 18:00, idle after work
        predicted = predict_next_activity(store, config, now)
        assert not predicted.is_empty
        assert predicted.start == 28 * DAY + 9 * HOUR
        assert predicted.confidence == 1.0

    def test_prediction_spans_first_to_last_login_in_window(self):
        """When the first qualifying window covers logins with different
        offsets, the prediction spans the earliest first-login to the
        latest last-login across the historical windows (lines 25-33)."""
        logins = []
        for d in range(28):
            # Even days log in at 09:00, odd days at 09:20.
            tod = 9 * HOUR if d % 2 == 0 else 9 * HOUR + 20 * MIN
            logins.append(d * DAY + tod)
        store = store_with_logins(logins)
        now = 27 * DAY + 18 * HOUR
        # c=0.6: windows seeing only one parity (probability ~0.5) cannot
        # seed; the first qualifying window must straddle both login times.
        predicted = predict_next_activity(
            store, ProRPConfig(confidence=0.6), now
        )
        assert predicted.start == 28 * DAY + 9 * HOUR
        assert predicted.end == 28 * DAY + 9 * HOUR + 20 * MIN

    def test_jittered_logins_predict_earliest(self):
        """With per-day jitter the predicted start is the earliest
        historical login offset within the selected window."""
        jitter = [0, 5, -7, 12, 3, -2, 9] * 4  # minutes
        logins = [d * DAY + 9 * HOUR + jitter[d] * MIN for d in range(28)]
        store = store_with_logins(logins)
        predicted = predict_next_activity(
            store, ProRPConfig(), 27 * DAY + 18 * HOUR
        )
        assert predicted.confidence == 1.0
        assert predicted.start == 28 * DAY + 9 * HOUR - 7 * MIN

    def test_no_history_returns_sentinel(self):
        predicted = predict_next_activity(
            HistoryStore(), ProRPConfig(), 30 * DAY
        )
        assert predicted.is_empty
        assert predicted == PredictedActivity.none()

    def test_partial_history_confidence(self):
        """Activity on only 7 of the last 28 days -> confidence 0.25."""
        store = self._history(days=28)
        # Remove 21 days of logins by building a 7-day history instead.
        store = store_with_logins(
            [d * DAY + 9 * HOUR for d in range(21, 28)]
        )
        predicted = predict_next_activity(
            store, ProRPConfig(), 27 * DAY + 18 * HOUR
        )
        assert predicted.confidence == pytest.approx(7 / 28)

    def test_confidence_threshold_filters(self):
        store = store_with_logins([d * DAY + 9 * HOUR for d in range(26, 28)])
        config = ProRPConfig(confidence=0.5)
        predicted = predict_next_activity(store, config, 27 * DAY + 18 * HOUR)
        assert predicted.is_empty

    def test_adjacent_window_with_higher_confidence_refines(self):
        """A directly following window with strictly higher probability
        refines the seed prediction (the paper's 'earliest start and the
        highest confidence')."""
        logins = []
        for d in range(28):
            # Even days at 05:00, odd days at 05:04: one 5-minute slide
            # after the seeding window, both populations are covered.
            tod = 5 * HOUR if d % 2 == 0 else 5 * HOUR + 4 * MIN
            logins.append(d * DAY + tod)
        store = store_with_logins(logins)
        config = ProRPConfig(confidence=0.4, window_s=2 * HOUR)
        now = 27 * DAY + 22 * HOUR
        predicted = predict_next_activity(store, config, now)
        # Seed window sees only the even-day logins (14/28 = 0.5); the next
        # window sees all 28 days and refines the prediction.
        assert predicted.confidence == 1.0
        assert predicted.start == 28 * DAY + 5 * HOUR
        assert predicted.end == 28 * DAY + 5 * HOUR + 4 * MIN

    def test_scan_breaks_after_first_plateau(self):
        """Once a prediction exists, a non-improving window stops the scan:
        a *later* equally-confident activity cannot displace the earliest
        one (Algorithm 4's break)."""
        logins = []
        for d in range(28):
            logins.append(d * DAY + 6 * HOUR)
            logins.append(d * DAY + 13 * HOUR)
        store = store_with_logins(logins)
        config = ProRPConfig(confidence=0.5, window_s=2 * HOUR)
        predicted = predict_next_activity(store, config, 27 * DAY + 22 * HOUR)
        assert predicted.start == 28 * DAY + 6 * HOUR
        assert predicted.confidence == 1.0

    def test_activity_end_events_ignored(self):
        """Only event_type = 1 rows count as logins (Algorithm 4 line 22)."""
        store = HistoryStore()
        for d in range(28):
            store.insert_history(d * DAY + 9 * HOUR, EventType.ACTIVITY_START)
            store.insert_history(d * DAY + 17 * HOUR, EventType.ACTIVITY_END)
        predicted = predict_next_activity(
            store, ProRPConfig(), 27 * DAY + 18 * HOUR
        )
        assert predicted.start == predicted.end == 28 * DAY + 9 * HOUR


class TestWeeklySeasonality:
    def test_weekly_pattern_with_weekly_seasonality(self):
        """Monday-only activity: daily seasonality confidence is 4/28, the
        weekly detector sees 4/4."""
        logins = [week * 7 * DAY + 9 * HOUR for week in range(4)]
        store = store_with_logins(logins)
        now = 3 * 7 * DAY + 18 * HOUR  # the 4th Monday evening
        daily = predict_next_activity(store, ProRPConfig(confidence=0.2), now)
        assert daily.is_empty
        weekly_config = ProRPConfig(
            confidence=0.2,
            seasonality=Seasonality.WEEKLY,
            horizon_s=7 * DAY,
        )
        weekly = predict_next_activity(store, weekly_config, now)
        assert weekly.confidence == 1.0
        assert weekly.start == 4 * 7 * DAY + 9 * HOUR

    def test_daily_low_threshold_still_catches_weekly(self):
        """The production default c=0.1 keeps weekly patterns visible to the
        daily detector (4/28 = 0.14 >= 0.1), as Section 9.2 implies."""
        logins = [week * 7 * DAY + 9 * HOUR for week in range(4)]
        store = store_with_logins(logins)
        predicted = predict_next_activity(
            store, ProRPConfig(), 3 * 7 * DAY + 18 * HOUR
        )
        assert not predicted.is_empty
        assert predicted.confidence == pytest.approx(4 / 28)


class TestHorizonBounds:
    def test_prediction_start_within_horizon(self):
        store = store_with_logins([d * DAY + 9 * HOUR for d in range(28)])
        config = ProRPConfig()
        now = 27 * DAY + 18 * HOUR
        predicted = predict_next_activity(store, config, now)
        assert now <= predicted.start <= now + config.horizon_s

    def test_alternating_days_predicted_daily_regardless_of_parity(self):
        """The daily detector cannot represent every-other-day patterns: it
        predicts the historical time-of-day for *tomorrow* even on off days
        (a documented limitation of daily seasonality)."""
        store = store_with_logins([d * DAY for d in range(0, 28, 2)])
        predicted = predict_next_activity(
            store, ProRPConfig(confidence=0.4), 26 * DAY + 1 * HOUR
        )
        assert not predicted.is_empty
        # Day 27 carries no real login, but half the historical days do.
        assert predicted.start == 27 * DAY
        assert predicted.confidence == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# Backend equivalence (B-tree reference vs SQL procedures vs NumPy)
# ---------------------------------------------------------------------------


@st.composite
def history_and_config(draw):
    h_days = draw(st.integers(min_value=1, max_value=6))
    window_h = draw(st.integers(min_value=1, max_value=7))
    slide_min = draw(st.sampled_from([30, 60, 120]))
    confidence = draw(st.sampled_from([0.1, 0.25, 0.5, 0.9]))
    config = ProRPConfig(
        history_days=h_days,
        window_s=window_h * HOUR,
        slide_s=slide_min * MIN,
        confidence=confidence,
    )
    now = draw(st.integers(min_value=h_days * DAY, max_value=h_days * DAY + DAY))
    logins = draw(
        st.lists(
            st.integers(min_value=max(0, now - h_days * DAY), max_value=now),
            unique=True,
            min_size=0,
            max_size=40,
        )
    )
    return config, now, sorted(logins)


@settings(max_examples=50, deadline=None)
@given(history_and_config())
def test_fast_predictor_equivalent_to_reference(case):
    config, now, logins = case
    store = store_with_logins(logins)
    reference = predict_next_activity(store, config, now)
    fast = FastPredictor(config).predict(logins, now)
    assert fast == reference


@settings(max_examples=15, deadline=None)
@given(history_and_config())
def test_sql_backend_equivalent_to_reference(case):
    config, now, logins = case
    reference = predict_next_activity(store_with_logins(logins), config, now)
    sql_store = SqlHistoryProcedures()
    for t in logins:
        sql_store.insert_history(t, EventType.ACTIVITY_START)
    via_sql = predict_next_activity(sql_store, config, now)
    assert via_sql == reference


def test_fast_predictor_empty_history():
    config = ProRPConfig()
    assert FastPredictor(config).predict([], 30 * DAY).is_empty


def test_fast_predictor_reusable_across_databases():
    """One FastPredictor instance serves many databases (grid is per-config)."""
    config = ProRPConfig(history_days=2, slide_s=30 * MIN)
    predictor = FastPredictor(config)
    a = predictor.predict([DAY + 9 * HOUR, 9 * HOUR], 2 * DAY)
    b = predictor.predict([], 2 * DAY)
    assert not a.is_empty and b.is_empty


# ---------------------------------------------------------------------------
# Invariants the policy relies on
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(history_and_config())
def test_prediction_invariants(case):
    """Whatever the history: a non-empty prediction starts at or after
    `now`, ends no earlier than it starts, stays within reach of the
    horizon, and carries a confidence at or above the threshold."""
    config, now, logins = case
    predicted = predict_next_activity(store_with_logins(logins), config, now)
    if predicted.is_empty:
        assert predicted.confidence == 0.0
        return
    assert now <= predicted.start
    assert predicted.start <= predicted.end
    # The last candidate window starts at now + p - w; its activity span
    # cannot extend past now + p.
    assert predicted.end <= now + config.horizon_s
    assert config.confidence <= predicted.confidence <= 1.0


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.lists(
        st.integers(min_value=0, max_value=28 * DAY),
        unique=True,
        min_size=0,
        max_size=50,
    ),
)
def test_weekly_seasonality_backends_equivalent(now_offset, logins):
    """Fast/reference equivalence holds for the weekly variant too."""
    config = ProRPConfig(
        seasonality=Seasonality.WEEKLY,
        horizon_s=7 * DAY,
        slide_s=2 * HOUR,
        confidence=0.25,
    )
    now = 28 * DAY + now_offset
    reference = predict_next_activity(store_with_logins(sorted(logins)), config, now)
    fast = FastPredictor(config).predict(sorted(logins), now)
    assert fast == reference
