"""Tests for the prediction-accuracy evaluation."""

import pytest

from repro.core.accuracy import (
    AccuracyReport,
    evaluate_fleet_predictions,
    evaluate_predictions,
)
from repro.simulation import SimulationSettings, simulate_region
from repro.simulation.results import DatabaseOutcome
from repro.types import SECONDS_PER_DAY, SECONDS_PER_HOUR, ActivityTrace, Session

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR


def outcome_with_predictions(predictions):
    outcome = DatabaseOutcome("db", 0, 100 * DAY)
    for p in predictions:
        outcome.record_prediction(*p)
    return outcome


def daily_trace(days=31):
    return ActivityTrace(
        "db",
        [Session(d * DAY + 9 * HOUR, d * DAY + 17 * HOUR) for d in range(days)],
    )


class TestClassification:
    def test_hit(self):
        trace = daily_trace()
        outcome = outcome_with_predictions(
            [(5 * DAY + 18 * HOUR, 6 * DAY + 9 * HOUR, 6 * DAY + 9 * HOUR, 1.0)]
        )
        report = evaluate_predictions(outcome, trace, horizon_s=DAY)
        assert report.hits == 1 and report.total == 1
        assert report.lead_time_errors_s == [0]

    def test_miss_outside_tolerance(self):
        trace = daily_trace()
        # Predicted 05:00, actual login 09:00: 4h off, beyond 30min.
        outcome = outcome_with_predictions(
            [(5 * DAY + 18 * HOUR, 6 * DAY + 5 * HOUR, 6 * DAY + 5 * HOUR, 0.5)]
        )
        report = evaluate_predictions(outcome, trace, horizon_s=DAY)
        assert report.misses == 1
        assert report.lead_time_errors_s == [4 * HOUR]

    def test_false_alarm(self):
        trace = ActivityTrace("db", [Session(0, HOUR)])
        outcome = outcome_with_predictions(
            [(2 * HOUR, 5 * HOUR, 6 * HOUR, 0.3)]
        )
        report = evaluate_predictions(outcome, trace, horizon_s=DAY)
        assert report.false_alarms == 1

    def test_undetected(self):
        trace = daily_trace()
        outcome = outcome_with_predictions([(5 * DAY + 18 * HOUR, 0, 0, 0.0)])
        report = evaluate_predictions(outcome, trace, horizon_s=DAY)
        assert report.undetected == 1

    def test_true_quiet(self):
        trace = ActivityTrace("db", [Session(0, HOUR)])
        outcome = outcome_with_predictions([(2 * HOUR, 0, 0, 0.0)])
        report = evaluate_predictions(outcome, trace, horizon_s=DAY)
        assert report.true_quiet == 1

    def test_login_beyond_horizon_is_false_alarm(self):
        trace = ActivityTrace("db", [Session(0, HOUR), Session(5 * DAY, 5 * DAY + HOUR)])
        outcome = outcome_with_predictions([(2 * HOUR, 7 * HOUR, 8 * HOUR, 0.2)])
        report = evaluate_predictions(outcome, trace, horizon_s=DAY)
        assert report.false_alarms == 1


class TestReportMath:
    def test_precision_recall(self):
        report = AccuracyReport(hits=8, misses=1, false_alarms=1, undetected=1)
        assert report.precision == pytest.approx(0.8)
        assert report.recall == pytest.approx(0.8)

    def test_empty_report(self):
        report = AccuracyReport()
        assert report.precision == 0.0
        assert report.recall == 0.0
        with pytest.raises(ValueError):
            report.lead_time_percentile(50)

    def test_merge(self):
        a = AccuracyReport(hits=1, lead_time_errors_s=[10])
        a.merge(AccuracyReport(misses=2, lead_time_errors_s=[20]))
        assert a.hits == 1 and a.misses == 2
        assert a.lead_time_errors_s == [10, 20]


class TestEndToEnd:
    def test_daily_database_predicts_well(self):
        """Algorithm 4 on a clean daily pattern: perfect precision/recall,
        near-zero lead time -- the 'sufficient in practice' claim."""
        trace = daily_trace()
        settings = SimulationSettings(
            eval_start=28 * DAY,
            eval_end=30 * DAY,
            resume_latency_jitter_s=0,
            collect_predictions=True,
        )
        result = simulate_region([trace], "proactive", settings=settings)
        report = evaluate_fleet_predictions(
            result.outcomes, [trace], horizon_s=DAY
        )
        assert report.hits >= 1
        assert report.misses == 0
        assert report.false_alarms == 0
        assert report.precision == 1.0
        assert max(abs(e) for e in report.lead_time_errors_s) <= 60

    def test_collection_off_by_default(self):
        trace = daily_trace()
        settings = SimulationSettings(eval_start=29 * DAY, eval_end=30 * DAY)
        result = simulate_region([trace], "proactive", settings=settings)
        assert all(not o.predictions for o in result.outcomes)

    def test_fleet_accuracy_on_region(self):
        from repro.workload import RegionPreset, generate_region_traces

        traces = generate_region_traces(RegionPreset.EU1, 80, span_days=32, seed=5)
        settings = SimulationSettings(
            eval_start=30 * DAY, eval_end=31 * DAY, collect_predictions=True
        )
        result = simulate_region(traces, "proactive", settings=settings)
        report = evaluate_fleet_predictions(result.outcomes, traces, horizon_s=DAY)
        assert report.total > 0
        # The mixture contains predictable and unpredictable databases:
        # both sides of the confusion matrix are populated.
        assert report.hits > 0
        assert report.true_quiet + report.false_alarms + report.undetected > 0
        assert 0.0 <= report.precision <= 1.0
        assert 0.0 <= report.recall <= 1.0
