"""Multi-level capacity demand traces.

Demand generalises Definition 2.1 from {0, 1} to vCore levels: D(d, t) is
the number of cores the workload needs at time t.  Traces are piecewise
constant on a fixed slot grid (default 5 minutes), which keeps every
computation exact and vectorisable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.types import SECONDS_PER_MINUTE, ActivityTrace

#: Default slot width: the paper's 5-minute window slide.
DEFAULT_SLOT_S = 5 * SECONDS_PER_MINUTE


@dataclass(frozen=True)
class CapacityTrace:
    """Per-slot demanded capacity for one database."""

    database_id: str
    start: int
    slot_s: int
    levels: np.ndarray  # int16 vCores per slot

    def __post_init__(self) -> None:
        if self.slot_s <= 0:
            raise TraceError("slot width must be positive")
        if (self.levels < 0).any():
            raise TraceError("capacity demand cannot be negative")

    @property
    def end(self) -> int:
        return self.start + len(self.levels) * self.slot_s

    def level_at(self, t: int) -> int:
        """Demanded cores at time ``t`` (0 outside the trace)."""
        if t < self.start or t >= self.end:
            return 0
        return int(self.levels[(t - self.start) // self.slot_s])

    def slot_index(self, t: int) -> int:
        return (t - self.start) // self.slot_s

    def window(self, window_start: int, window_end: int) -> np.ndarray:
        """Demand levels for the slots covering [window_start, window_end)."""
        lo = self.slot_index(window_start)
        hi = self.slot_index(window_end - 1) + 1
        if lo < 0 or hi > len(self.levels):
            raise TraceError("window outside the capacity trace")
        return self.levels[lo:hi]

    def core_seconds(self) -> int:
        """Total demanded core-seconds."""
        return int(self.levels.sum()) * self.slot_s


def capacity_from_activity(
    trace: ActivityTrace,
    span_end: int,
    max_vcores: int = 8,
    seed: int = 0,
    slot_s: int = DEFAULT_SLOT_S,
) -> CapacityTrace:
    """Derive a multi-level demand trace from binary activity sessions.

    Each session gets a base intensity (1..max/2 cores) plus occasional
    bursts to higher levels -- the "workload spikes ... throttled by fixed
    resource capacity limits" of Section 1.  Demand is zero outside
    sessions, so the binary problem is exactly the ``level > 0`` projection
    of this trace.
    """
    if max_vcores < 1:
        raise TraceError("max_vcores must be at least 1")
    rng = random.Random(f"{seed}:{trace.database_id}")
    n_slots = (span_end + slot_s - 1) // slot_s
    levels = np.zeros(n_slots, dtype=np.int16)
    for session in trace.sessions:
        base = rng.randint(1, max(1, max_vcores // 2))
        lo = session.start // slot_s
        hi = min(n_slots, (session.end - 1) // slot_s + 1)
        levels[lo:hi] = np.maximum(levels[lo:hi], base)
        # Bursts: short spikes above the base level within the session.
        for _ in range(rng.randint(0, 3)):
            if hi - lo < 2:
                break
            burst_lo = rng.randrange(lo, hi)
            burst_hi = min(hi, burst_lo + rng.randint(1, 4))
            burst_level = rng.randint(base, max_vcores)
            levels[burst_lo:burst_hi] = np.maximum(
                levels[burst_lo:burst_hi], burst_level
            )
    return CapacityTrace(
        database_id=trace.database_id, start=0, slot_s=slot_s, levels=levels
    )
