"""Region-level simulation: a fleet of serverless databases under one
resource allocation policy.

``simulate_region`` replays every database's activity trace through the
chosen policy (reactive baseline, proactive Algorithm 1, or the clairvoyant
optimum), shares one cluster and one metadata store across the fleet, runs
the periodic proactive resume operation (Algorithm 5), and aggregates the
KPI metrics of Section 8.

A warm-up lead (default one day) precedes the evaluation window so the
lifecycle states settle before anything is measured; history older than the
warm-up is bulk-loaded into each database's history store, mirroring a
fleet that has been running for weeks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster import Cluster
from repro.config import DEFAULT_CONFIG, ProRPConfig
from repro.core.fast_predictor import FastPredictor, get_fast_predictor
from repro.core.kpi import KpiReport
from repro.core.policy import PolicyKind
from repro.core.prediction_cache import PredictionCache
from repro.core.resume_service import IterationRecord, ProactiveResumeOperation
from repro.errors import SimulationError
from repro.faults.resilience import CircuitBreaker
from repro.faults.runtime import FAULTS
from repro.observability.metrics import SIZE_BUCKETS
from repro.observability.runtime import OBS
from repro.simulation.actor import ProactiveActor, ReactiveActor, _BaseActor
from repro.simulation.engine import EventQueue
from repro.simulation.results import DatabaseOutcome, aggregate, bucket_event_times
from repro.storage.history import HistoryStore
from repro.storage.metadata import MetadataStore
from repro.types import SECONDS_PER_DAY, ActivityTrace, HistoryEvent, Session
from repro.workload.archetypes import maintenance_sessions


@dataclass(frozen=True)
class SimulationSettings:
    """Non-policy knobs of the simulation environment."""

    eval_start: int
    eval_end: int
    #: Settling time before the evaluation window (states converge).
    warmup_s: int = SECONDS_PER_DAY
    #: Cluster shape; capacity is per node.
    n_nodes: int = 8
    node_capacity: int = 64
    resume_latency_s: int = 45
    resume_latency_jitter_s: int = 15
    move_latency_s: int = 180
    seed: int = 0
    #: Use the vectorised predictor (reference predictor when False).
    use_fast_predictor: bool = True
    #: Memoise predictions per database (exact-key, login-invalidated) and
    #: batch the settle-phase predictions into one ``predict_fleet`` call.
    #: Byte-identical results either way (see docs/performance.md); only
    #: effective together with the fast predictor.
    use_prediction_cache: bool = True
    #: Keep only the most recent N resume-operation iteration records,
    #: rolling older ones into aggregate counters (None keeps all; see
    #: ProactiveResumeOperation.retain_iterations).
    resume_iteration_retention: Optional[int] = None
    #: System maintenance operations per database per week (Section 3.3);
    #: 0 disables them.  They hold/resume resources but are excluded from
    #: history, predictions, and the customer KPIs.
    maintenance_per_week: float = 0.0
    #: Time the reference predictor per call (Figure 10(c)); forces the
    #: reference implementation.
    measure_prediction_latency: bool = False
    #: Keep per-database allocation timelines (examples / plots).
    collect_timelines: bool = False
    #: Record every prediction (time, start, end, confidence) for offline
    #: accuracy evaluation (repro.core.accuracy).
    collect_predictions: bool = False
    #: Intervals [(start, end), ...] during which the ProRP components
    #: (prediction + proactive resume operation) are down.  Section 3.2:
    #: "If any component of ProRP goes down, the system must default to
    #: the reactive policy until the failed component comes up."
    prorp_outages: tuple = ()
    #: Simulation engine: "columnar" (struct-of-arrays FSM state, the
    #: default; see docs/fleet_scale.md) or "actor" (one Python object per
    #: database).  Byte-identical results either way -- the equivalence
    #: suite proves it -- so this is a representation knob, not a
    #: semantics knob.  Latency measurement always runs on the actors.
    engine: str = "columnar"
    #: Region label attached to the live SLO streams (``region=...``);
    #: empty means unlabelled series.  Purely observational: the KPI
    #: ledgers are byte-identical with or without it.
    region_label: str = ""
    #: Window width (sim seconds) of the live SLO streams fed by the
    #: columnar engines when observability is enabled.
    slo_window_s: int = 900
    #: Predictor-bank policies (``repro.tuning.bank.BANK_POLICIES`` names)
    #: the proactive engines route predictions through; the empty tuple
    #: disables the bank entirely (the byte-identical baseline).  A bank
    #: of exactly ``("sliding",)`` is a pure delegate and is likewise
    #: byte-identical to the baseline.
    predictor_bank: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.eval_end <= self.eval_start:
            raise SimulationError("eval_end must be after eval_start")
        if self.predictor_bank:
            from repro.tuning.bank import BANK_POLICIES

            for name in self.predictor_bank:
                if name not in BANK_POLICIES:
                    raise SimulationError(
                        f"unknown predictor-bank policy {name!r} "
                        f"(known: {', '.join(BANK_POLICIES)})"
                    )
        if self.slo_window_s <= 0:
            raise SimulationError("slo_window_s must be positive")
        if self.engine not in ("columnar", "actor"):
            raise SimulationError(
                f"unknown engine {self.engine!r} (choose 'columnar' or 'actor')"
            )
        if self.warmup_s < 0:
            raise SimulationError("warmup_s must be non-negative")
        if self.maintenance_per_week < 0:
            raise SimulationError("maintenance_per_week must be non-negative")
        if (
            self.resume_iteration_retention is not None
            and self.resume_iteration_retention <= 0
        ):
            raise SimulationError(
                "resume_iteration_retention must be positive (or None)"
            )
        for outage in self.prorp_outages:
            start, end = outage
            if end <= start:
                raise SimulationError(f"outage {outage} must have end > start")

    @property
    def sim_start(self) -> int:
        return self.eval_start - self.warmup_s


@dataclass
class RegionSimulationResult:
    """Everything a figure driver needs from one simulation run."""

    policy: str
    settings: SimulationSettings
    config: ProRPConfig
    outcomes: List[DatabaseOutcome]
    resume_iterations: List[IterationRecord] = field(default_factory=list)
    #: Per-database history stores after the run (Figure 10(a-b)).
    histories: Dict[str, HistoryStore] = field(default_factory=dict)
    cluster_moves: int = 0

    def kpis(self) -> KpiReport:
        return aggregate(
            self.policy,
            self.outcomes,
            self.settings.eval_start,
            self.settings.eval_end,
        )

    # -- Figure 11/12 helpers --------------------------------------------

    def prewarm_batch_sizes(self) -> List[int]:
        """Databases pre-warmed per resume-operation iteration, within the
        evaluation window (Figure 11's gray boxes)."""
        return [
            record.batch_size
            for record in self.resume_iterations
            if self.settings.eval_start <= record.time < self.settings.eval_end
        ]

    def workflow_counts_per_interval(self, kind: str, bucket_s: int) -> List[int]:
        """Workflow events per ``bucket_s`` interval (Figures 11-12)."""
        times: List[int] = []
        for outcome in self.outcomes:
            if kind == "physical_pause":
                times.extend(outcome.physical_pause_times)
            elif kind == "reactive_resume":
                times.extend(outcome.reactive_resume_times)
            elif kind == "proactive_resume":
                times.extend(outcome.proactive_resume_times)
            elif kind == "logical_pause":
                times.extend(outcome.logical_pause_times)
            else:
                raise ValueError(f"unknown workflow kind {kind!r}")
        return bucket_event_times(
            times, self.settings.eval_start, self.settings.eval_end, bucket_s
        )


def _warm_history(trace: ActivityTrace, sim_start: int, history_days: int) -> HistoryStore:
    """Bulk-load the history a long-running tracker would have accumulated
    by ``sim_start``: everything within the retention window plus the
    oldest event as the lifespan witness (Algorithm 3 keeps it)."""
    store = HistoryStore()
    retention_start = sim_start - history_days * SECONDS_PER_DAY
    events: List[HistoryEvent] = []
    all_events = [e for e in trace.events() if e.time_snapshot < sim_start]
    if all_events:
        witness = all_events[0]
        events.append(witness)
        events.extend(
            e
            for e in all_events[1:]
            if e.time_snapshot >= retention_start
        )
    store.bulk_load(events)
    return store


def _seed_initial_predictions(
    actors: Dict[str, _BaseActor],
    fast_predictor: FastPredictor,
    config: ProRPConfig,
    sim_start: int,
) -> None:
    """Batch the settle-phase predictions into one fleet evaluation.

    Every database that is idle-with-history at ``sim_start`` runs the
    same prediction at the same instant inside ``actor.start()``.  Here
    those D single-database Algorithm-4 scans become one
    :meth:`FastPredictor.predict_fleet` call per distinct configuration
    (adaptive seasonality can split the fleet); each actor's cache is
    seeded so the in-start refresh replays as an exact-key hit.  Fault
    injection and breaker consults stay inside the refresh, untouched.
    """
    groups: Dict[ProRPConfig, List[ProactiveActor]] = {}
    for actor in actors.values():
        if not isinstance(actor, ProactiveActor):
            continue
        request = actor.initial_prediction_request()
        if request is not None:
            groups.setdefault(request, []).append(actor)
    for group_config, members in groups.items():
        predictor = (
            fast_predictor
            if group_config == config
            else get_fast_predictor(group_config)
        )
        predictions = predictor.predict_fleet(
            [member.history.login_array() for member in members], sim_start
        )
        for member, prediction in zip(members, predictions):
            member.seed_prediction(group_config, sim_start, prediction)


def simulate_region(
    traces: Sequence[ActivityTrace],
    policy: Union[PolicyKind, str] = PolicyKind.PROACTIVE,
    config: ProRPConfig = DEFAULT_CONFIG,
    settings: Optional[SimulationSettings] = None,
) -> RegionSimulationResult:
    """Simulate a region of serverless databases under one policy.

    ``settings`` defaults to: evaluate the final 4 days of the traces with a
    1-day warm-up (the Figure 7 shape).
    """
    if isinstance(policy, str):
        policy = PolicyKind(policy)
    if not traces:
        raise SimulationError("simulate_region needs at least one trace")
    if settings is None:
        span_end = max(trace.span[1] for trace in traces)
        settings = SimulationSettings(
            eval_start=span_end - 4 * SECONDS_PER_DAY,
            eval_end=span_end,
        )
    if not OBS.enabled:
        return _simulate_region(traces, policy, config, settings)
    # The root of the run's trace: every engine.event span (and everything
    # those dispatch into) nests under it.
    with OBS.tracer.span(
        "simulate.region", policy=policy.value, n_databases=len(traces)
    ):
        result = _simulate_region(traces, policy, config, settings)
    for store in result.histories.values():
        OBS.metrics.histogram("history.tuples", buckets=SIZE_BUCKETS).observe(
            store.tuple_count
        )
    return result


def _simulate_region(
    traces: Sequence[ActivityTrace],
    policy: PolicyKind,
    config: ProRPConfig,
    settings: SimulationSettings,
) -> RegionSimulationResult:
    if policy is PolicyKind.OPTIMAL:
        return _simulate_optimal(traces, config, settings)
    if policy is PolicyKind.PROVISIONED:
        return _simulate_provisioned(traces, config, settings)

    if settings.engine == "columnar" and not settings.measure_prediction_latency:
        # Struct-of-arrays engine: byte-identical replay of the actor path
        # (the latency-measuring mode stays on the actors, whose per-call
        # timing hook the overhead experiment depends on).
        from repro.simulation.columnar import simulate_region_columnar

        return simulate_region_columnar(traces, policy, config, settings)

    queue = EventQueue(start=settings.sim_start)
    cluster = Cluster(
        n_nodes=settings.n_nodes,
        node_capacity=settings.node_capacity,
        resume_latency_s=settings.resume_latency_s,
        resume_latency_jitter_s=settings.resume_latency_jitter_s,
        move_latency_s=settings.move_latency_s,
        seed=settings.seed,
    )
    metadata = MetadataStore()
    outcomes: List[DatabaseOutcome] = []
    actors: Dict[str, _BaseActor] = {}
    histories: Dict[str, HistoryStore] = {}
    fast_predictor = (
        FastPredictor(config)
        if policy is PolicyKind.PROACTIVE
        and settings.use_fast_predictor
        and not settings.measure_prediction_latency
        else None
    )
    # One predictor circuit breaker per region (the predictor is a shared
    # component): repeated injected failures open it, degrading the whole
    # fleet to reactive mode until the recovery window passes.  Built only
    # under an armed injector so un-chaosed runs carry zero extra state.
    breaker = (
        CircuitBreaker(failure_threshold=5, recovery_s=900, name="predictor")
        if FAULTS.enabled and policy is PolicyKind.PROACTIVE
        else None
    )
    bank = None
    if settings.predictor_bank and policy is PolicyKind.PROACTIVE:
        from repro.tuning.bank import PredictorBank

        bank = PredictorBank(settings.predictor_bank, config)

    for trace in traces:
        outcome = DatabaseOutcome(
            trace.database_id,
            settings.eval_start,
            settings.eval_end,
            collect_timeline=settings.collect_timelines,
        )
        outcomes.append(outcome)
        maintenance: List[Session] = []
        if settings.maintenance_per_week > 0:
            maintenance = maintenance_sessions(
                settings.sim_start,
                settings.eval_end,
                random.Random(f"{settings.seed}:maint:{trace.database_id}"),
                per_week=settings.maintenance_per_week,
            )
        if policy is PolicyKind.PROACTIVE:
            history = _warm_history(trace, settings.sim_start, config.history_days)
            histories[trace.database_id] = history
            actor: _BaseActor = ProactiveActor(
                trace,
                queue,
                cluster,
                metadata,
                outcome,
                config,
                settings.sim_start,
                settings.eval_end,
                history=history,
                fast_predictor=fast_predictor,
                measure_prediction_latency=settings.measure_prediction_latency,
                maintenance=maintenance,
                collect_predictions=settings.collect_predictions,
                prorp_outages=settings.prorp_outages,
                breaker=breaker,
                prediction_cache=(
                    PredictionCache()
                    if fast_predictor is not None and settings.use_prediction_cache
                    else None
                ),
                bank=bank,
                bank_key=trace.database_id,
            )
        else:
            actor = ReactiveActor(
                trace,
                queue,
                cluster,
                metadata,
                outcome,
                config,
                settings.sim_start,
                settings.eval_end,
                maintenance=maintenance,
            )
        actors[trace.database_id] = actor

    if fast_predictor is not None and settings.use_prediction_cache:
        _seed_initial_predictions(
            actors, fast_predictor, config, settings.sim_start
        )

    for actor in actors.values():
        actor.start()

    resume_operation: Optional[ProactiveResumeOperation] = None
    if policy is PolicyKind.PROACTIVE:
        resume_operation = ProactiveResumeOperation(
            metadata,
            prewarm_s=config.prewarm_s,
            period_s=config.resume_operation_period_s,
            on_prewarm=lambda db_id, now: actors[db_id].prewarm(now),
            retain_iterations=settings.resume_iteration_retention,
        )

        def run_resume_operation(now: int) -> None:
            # Section 3.2: a downed ProRP skips its iterations entirely;
            # the fleet falls back to reactive resumes until recovery.
            if not any(start <= now < end for start, end in settings.prorp_outages):
                resume_operation.run_once(now)
            nxt = now + config.resume_operation_period_s
            if nxt < settings.eval_end:
                queue.schedule_oneshot(nxt, run_resume_operation)

        queue.schedule_oneshot(
            settings.sim_start + config.resume_operation_period_s,
            run_resume_operation,
        )

    queue.run_until(settings.eval_end)
    for actor in actors.values():
        actor.finalize(settings.eval_end)

    return RegionSimulationResult(
        policy=policy.value,
        settings=settings,
        config=config,
        outcomes=outcomes,
        resume_iterations=resume_operation.iterations if resume_operation else [],
        histories=histories,
        cluster_moves=cluster.moves,
    )


def _simulate_optimal(
    traces: Sequence[ActivityTrace],
    config: ProRPConfig,
    settings: SimulationSettings,
) -> RegionSimulationResult:
    """The clairvoyant optimum of Figure 2(c): A(d, t) = D(d, t).

    Computed analytically: every login is served, resources are never idle
    nor unavailable, and used time equals demanded time."""
    outcomes: List[DatabaseOutcome] = []
    for trace in traces:
        outcome = DatabaseOutcome(
            trace.database_id,
            settings.eval_start,
            settings.eval_end,
            collect_timeline=settings.collect_timelines,
        )
        for session in trace.sessions:
            if session.end > settings.eval_start and session.start < settings.eval_end:
                outcome.add_used(session.start, session.end)
            if settings.eval_start <= session.start < settings.eval_end:
                outcome.record_login(session.start, served=True)
        outcomes.append(outcome)
    return RegionSimulationResult(
        policy=PolicyKind.OPTIMAL.value,
        settings=settings,
        config=config,
        outcomes=outcomes,
    )


def _simulate_provisioned(
    traces: Sequence[ActivityTrace],
    config: ProRPConfig,
    settings: SimulationSettings,
) -> RegionSimulationResult:
    """Fixed-size provisioning (Section 1's pre-serverless baseline):
    A(d, t) = 1 always.  Every login is served instantly; every idle second
    is paid for.  Computed analytically -- the allocation never changes,
    so there is nothing to simulate.

    The idle time is booked as "logical pause" for lack of a finer cause:
    it is the same D=0, A=1 quadrant of Definition 2.2.
    """
    outcomes: List[DatabaseOutcome] = []
    for trace in traces:
        outcome = DatabaseOutcome(
            trace.database_id,
            settings.eval_start,
            settings.eval_end,
            collect_timeline=settings.collect_timelines,
        )
        cursor = settings.eval_start
        for session in trace.sessions:
            if session.end <= settings.eval_start:
                continue
            if session.start >= settings.eval_end:
                break
            start = max(session.start, settings.eval_start)
            if start > cursor:
                outcome.add_idle(cursor, start, "logical_pause")
            outcome.add_used(session.start, session.end)
            cursor = min(session.end, settings.eval_end)
            if settings.eval_start <= session.start < settings.eval_end:
                outcome.record_login(session.start, served=True)
        if cursor < settings.eval_end:
            outcome.add_idle(cursor, settings.eval_end, "logical_pause")
        outcomes.append(outcome)
    return RegionSimulationResult(
        policy=PolicyKind.PROVISIONED.value,
        settings=settings,
        config=config,
        outcomes=outcomes,
    )
