"""The paper's primary contribution: proactive resume and pause.

* :mod:`repro.core.predictor` -- the probabilistic next-activity prediction
  (Algorithm 4), faithful to the stored procedure, running against any
  history backend (B-tree store or SQL procedures).
* :mod:`repro.core.fast_predictor` -- a NumPy-vectorised implementation
  proven equivalent by the test suite; used for fleet-scale simulation.
* :mod:`repro.core.lifecycle` -- the resumed / logically-paused /
  physically-paused finite state automaton of Figure 4.
* :mod:`repro.core.policy` -- the reactive baseline, the proactive policy
  (Algorithm 1), and the clairvoyant optimal policy (Figure 2).
* :mod:`repro.core.resume_service` -- the periodic proactive resume
  operation of the control plane (Algorithm 5).
* :mod:`repro.core.kpi` -- the KPI metrics of Section 8.
"""

from repro.core.fast_predictor import FastPredictor
from repro.core.kpi import KpiReport
from repro.core.lifecycle import LifecycleState, LifecycleTransition
from repro.core.policy import PolicyKind
from repro.core.predictor import HistoryView, predict_next_activity

__all__ = [
    "predict_next_activity",
    "HistoryView",
    "FastPredictor",
    "LifecycleState",
    "LifecycleTransition",
    "PolicyKind",
    "KpiReport",
]
