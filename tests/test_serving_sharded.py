"""Tests for the shared-nothing sharded serving tier.

The center of gravity is the equivalence property demanded by the
architecture: the same request trace through ``serve --shards 4`` (real
spawned workers, shared-memory arena, consistent-hash routing) and
through the in-process gateway must yield byte-identical prediction
payloads and resume-scan orderings.  Two layers pin it:

* a hypothesis property test comparing the in-process registry against
  arena-backed views under randomized traces (predicts, cache-hitting
  repeats, appends, pause flips, scans) -- cheap, so it runs many
  examples;
* a full multi-process test driving an actual 4-worker router and the
  single-process server through one mixed trace.

Around that: the arena's CSR layout and single-writer contract, the
``LeanHistory`` CSR export, consistent-hash stability, router
backpressure (typed ``Overloaded`` when every replica's window is
full), breaker-gated worker respawn, merged metrics exposition, and
the admission snapshot's consistency under concurrent admits.
"""

import asyncio
import json

import numpy as np
import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.errors import ConfigError
from repro.serving import (
    HealthRequest,
    MetricsRequest,
    PredictionServer,
    PredictRequest,
    ResumeScanRequest,
    ServingSettings,
    encode_response,
    fleet_login_arrays,
)
from repro.serving.requests import Overloaded, PredictResponse
from repro.serving.sharded import (
    HashRing,
    RouterSettings,
    ShardRouter,
    SharedHistoryArena,
)
from repro.simulation.fleet import LeanHistory
from repro.types import SECONDS_PER_DAY

DAY = SECONDS_PER_DAY
NOW = 29 * DAY

#: Small deterministic fleet spread over four regions.
FLEETS = fleet_login_arrays(n_databases=24, now=NOW, seed=3)
REGIONS = [f"R{i % 4}" for i in range(len(FLEETS))]
DATABASE_IDS = [f"db-{i}" for i in range(len(FLEETS))]


def sharded_fleet():
    fleet = {}
    for database_id, logins, region in zip(DATABASE_IDS, FLEETS, REGIONS):
        fleet.setdefault(region, []).append((database_id, logins, True))
    return fleet


def inprocess_server(**settings) -> PredictionServer:
    server = PredictionServer(settings=ServingSettings(**settings))
    for database_id, logins, region in zip(DATABASE_IDS, FLEETS, REGIONS):
        server.register_database(region, database_id, logins, paused=True)
    return server


def normalized(response) -> str:
    """The response payload as canonical JSON, minus wall-clock noise."""
    doc = encode_response(response)
    doc.pop("queue_wait_ms", None)
    return json.dumps(doc, sort_keys=True)


# ---------------------------------------------------------------------------
# SharedHistoryArena
# ---------------------------------------------------------------------------


def test_arena_roundtrip_views_and_versions():
    arena = SharedHistoryArena.build(sharded_fleet(), slack=4)
    try:
        views = arena.views()
        assert set(views) == set(REGIONS)
        for i, (database_id, logins, region) in enumerate(
            zip(DATABASE_IDS, FLEETS, REGIONS)
        ):
            view_logins, paused = views[region][database_id]
            assert paused is True
            assert view_logins.tolist() == list(logins)
            assert views[region].login_version(database_id) == len(logins)
        # Registration order is iteration order (resume-scan ordering).
        assert [db for db, _ in views["R0"].items()] == [
            db for db, r in zip(DATABASE_IDS, REGIONS) if r == "R0"
        ]
    finally:
        arena.close()
        arena.unlink()


def test_arena_attach_sees_owner_writes():
    arena = SharedHistoryArena.build(sharded_fleet(), slack=2)
    reader = SharedHistoryArena.attach(arena.spec)
    try:
        region, database_id = REGIONS[0], DATABASE_IDS[0]
        before = reader.login_version(region, database_id)
        ts = int(FLEETS[0][-1]) + 60
        arena.append_login(region, database_id, ts)
        # Version bump and the new login are visible through the
        # separately-mapped reader with no refresh step (same pages).
        assert reader.login_version(region, database_id) == before + 1
        assert int(reader.login_view(region, database_id)[-1]) == ts
        arena.append_login(region, database_id, ts)  # dedup: no-op
        assert reader.login_version(region, database_id) == before + 1
        arena.set_paused(region, database_id, False)
        assert reader.views()[region][database_id][1] is False
    finally:
        reader.close()
        arena.close()
        arena.unlink()


def test_arena_write_contract():
    arena = SharedHistoryArena.build(
        {"R0": [("db-0", (100, 200), True)]}, slack=1
    )
    reader = SharedHistoryArena.attach(arena.spec)
    try:
        with pytest.raises(ConfigError, match="read-only"):
            reader.append_login("R0", "db-0", 300)
        with pytest.raises(ConfigError, match="read-only"):
            reader.set_paused("R0", "db-0", False)
        with pytest.raises(ConfigError, match="older"):
            arena.append_login("R0", "db-0", 50)
        arena.append_login("R0", "db-0", 300)
        with pytest.raises(ConfigError, match="slack"):
            arena.append_login("R0", "db-0", 400)
        with pytest.raises(ConfigError, match="unknown database"):
            arena.login_view("R0", "nope")
    finally:
        reader.close()
        arena.close()
        arena.unlink()


def test_lean_history_export_feeds_arena():
    # Two databases: one with three pre-sim sessions, one with one.
    sess_offsets = np.array([0, 3, 4], dtype=np.int64)
    starts = np.array([100, 500, 900, 300], dtype=np.int64)
    ends = np.array([200, 600, 1000, 400], dtype=np.int64)
    history = LeanHistory(
        sess_offsets, starts, ends, sim_start=2000, history_days=30
    )
    offsets, logins, versions = history.export_csr()
    for d in range(history.n):
        assert (
            logins[int(offsets[d]) : int(offsets[d + 1])].tolist()
            == history.login_array(d).tolist()
        )
        assert versions[d] == history.login_version(d)
    arena = SharedHistoryArena.from_lean_history(
        "EU1", history, ["a", "b"], [True, False], slack=2
    )
    try:
        assert (
            arena.login_view("EU1", "a").tolist()
            == history.login_array(0).tolist()
        )
        assert arena.views()["EU1"]["b"][1] is False
    finally:
        arena.close()
        arena.unlink()


# ---------------------------------------------------------------------------
# HashRing
# ---------------------------------------------------------------------------


def test_hashring_deterministic_and_distinct():
    ring_a = HashRing(range(4))
    ring_b = HashRing(range(4))
    keys = [f"region-{i}" for i in range(64)]
    assert ring_a.assignment(keys) == ring_b.assignment(keys)
    for key in keys:
        candidates = ring_a.candidates(key, replicas=3)
        assert len(candidates) == len(set(candidates)) == 3
    # Every worker owns some share of a 64-key space.
    owners = set(ring_a.assignment(keys).values())
    assert owners == {0, 1, 2, 3}


def test_hashring_removal_moves_only_lost_arcs():
    keys = [f"region-{i}" for i in range(128)]
    full = HashRing([0, 1, 2, 3]).assignment(keys)
    without_3 = HashRing([0, 1, 2]).assignment(keys)
    for key in keys:
        if full[key] != 3:
            assert without_3[key] == full[key]


def test_hashring_validation():
    with pytest.raises(ConfigError):
        HashRing([])
    with pytest.raises(ConfigError):
        HashRing([0], vnodes=0)


# ---------------------------------------------------------------------------
# Admission snapshot under concurrent admits
# ---------------------------------------------------------------------------


def test_admission_snapshot_consistent_under_concurrent_admits():
    server = inprocess_server(
        max_queue_depth=4, tenant_rate=50.0, tenant_burst=4.0
    )
    observations = []

    async def run():
        await server.start()

        async def sampler():
            for _ in range(200):
                observations.append(server.admission.snapshot())
                await asyncio.sleep(0)

        requests = [
            PredictRequest(
                f"r{i}",
                (),
                NOW,
                region=REGIONS[i % len(REGIONS)],
                database_id=DATABASE_IDS[i % len(DATABASE_IDS)],
                tenant=f"t{i % 3}",
            )
            for i in range(120)
        ]
        sample_task = asyncio.get_running_loop().create_task(sampler())
        await asyncio.gather(*(server.submit(r) for r in requests))
        await sample_task
        await server.stop()

    asyncio.run(run())
    final = server.admission.snapshot()
    # Every request is decided exactly once (no deadlines in this trace,
    # so no dispatch-time second decision).
    assert final["admitted"] + final["total_shed"] == 120
    assert final["shed"]["rate_limited"] > 0 or final["shed"]["queue_full"] > 0
    last_decisions = 0
    for snap in observations + [final]:
        # Internally consistent at every observation point: the shed map
        # sums to the total, decision counts never go backwards, and no
        # bucket exceeds its burst.
        assert snap["total_shed"] == sum(snap["shed"].values())
        decisions = snap["admitted"] + snap["total_shed"]
        assert decisions >= last_decisions
        last_decisions = decisions
        assert snap["max_queue_depth"] == 4
        for tokens in snap["tenant_buckets"].values():
            assert 0.0 <= tokens <= 4.0


# ---------------------------------------------------------------------------
# submit_nowait: the synchronous fast path
# ---------------------------------------------------------------------------


def test_submit_nowait_sync_and_cached_paths():
    server = inprocess_server()

    async def run():
        await server.start()
        response, future = server.submit_nowait(HealthRequest("h0"))
        assert future is None and response.kind == "health"
        by_id = PredictRequest(
            "p0", (), NOW, region=REGIONS[0], database_id=DATABASE_IDS[0]
        )
        response, future = server.submit_nowait(by_id)
        assert response is None  # cold: queued for the batched path
        first = await future
        assert isinstance(first, PredictResponse)
        response, future = server.submit_nowait(
            PredictRequest(
                "p1", (), NOW, region=REGIONS[0], database_id=DATABASE_IDS[0]
            )
        )
        # Warm: resolved synchronously from the prediction cache, and
        # the payload is identical to the batched evaluation.
        assert future is None
        assert response.prediction == first.prediction
        assert server.stats.cache_hits == 1
        # An append bumps the version, so the cache entry is unreachable.
        server.append_login(
            REGIONS[0], DATABASE_IDS[0], int(FLEETS[0][-1]) + 60
        )
        response, future = server.submit_nowait(
            PredictRequest(
                "p2", (), NOW, region=REGIONS[0], database_id=DATABASE_IDS[0]
            )
        )
        assert response is None
        await future
        # Unknown database: typed InvalidRequest, synchronously.
        response, future = server.submit_nowait(
            PredictRequest("p3", (), NOW, region=REGIONS[0], database_id="?")
        )
        assert future is None and response.kind == "invalid"
        await server.stop()

    asyncio.run(run())
    assert server.stats.cache_misses == 2


def test_prediction_cache_bounded():
    server = inprocess_server(prediction_cache_size=4)

    async def run():
        await server.start()
        for i in range(12):
            await server.submit(
                PredictRequest(
                    f"p{i}",
                    (),
                    NOW + i,
                    region=REGIONS[0],
                    database_id=DATABASE_IDS[0],
                )
            )
        await server.stop()

    asyncio.run(run())
    assert len(server._cache) <= 4


# ---------------------------------------------------------------------------
# Equivalence property: in-process registry vs arena-backed views
# ---------------------------------------------------------------------------


op_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("predict"), st.integers(0, len(FLEETS) - 1)),
        st.tuples(st.just("scan"), st.integers(0, 3)),
        st.tuples(st.just("append"), st.integers(0, len(FLEETS) - 1)),
        st.tuples(st.just("pause"), st.integers(0, len(FLEETS) - 1)),
    ),
    min_size=1,
    max_size=24,
)


@hsettings(max_examples=25, deadline=None)
@given(ops=op_strategy)
def test_arena_views_equivalent_to_registry(ops):
    """Any interleaving of predicts, appends, pause flips, and scans
    resolves byte-identically whether the server reads its own dict
    registry or attached shared-memory arena views."""
    registry_server = inprocess_server()
    arena = SharedHistoryArena.build(sharded_fleet(), slack=32)
    arena_server = PredictionServer(settings=ServingSettings())
    arena_server.attach_fleet(arena.views())
    appended = {}

    async def run():
        await registry_server.start()
        await arena_server.start()
        try:
            for seq, (op, target) in enumerate(ops):
                if op == "predict":
                    request = PredictRequest(
                        f"p{seq}",
                        (),
                        NOW,
                        region=REGIONS[target],
                        database_id=DATABASE_IDS[target],
                    )
                    a = await registry_server.submit(request)
                    b = await arena_server.submit(request)
                    assert normalized(a) == normalized(b)
                elif op == "scan":
                    request = ResumeScanRequest(
                        f"s{seq}", NOW, region=f"R{target}"
                    )
                    a = await registry_server.submit(request)
                    b = await arena_server.submit(request)
                    assert normalized(a) == normalized(b)
                elif op == "append":
                    ts = (
                        int(FLEETS[target][-1])
                        + 60 * (appended.get(target, 0) + 1)
                    )
                    appended[target] = appended.get(target, 0) + 1
                    registry_server.append_login(
                        REGIONS[target], DATABASE_IDS[target], ts
                    )
                    arena.append_login(
                        REGIONS[target], DATABASE_IDS[target], ts
                    )
                else:  # pause flip
                    flag = target % 2 == 0
                    registry_server.set_paused(
                        REGIONS[target], DATABASE_IDS[target], flag
                    )
                    arena.set_paused(
                        REGIONS[target], DATABASE_IDS[target], flag
                    )
        finally:
            await registry_server.stop()
            await arena_server.stop()

    try:
        asyncio.run(run())
    finally:
        arena.close()
        arena.unlink()


# ---------------------------------------------------------------------------
# Full multi-process equivalence: serve --shards 4 vs in-process
# ---------------------------------------------------------------------------


def equivalence_trace():
    requests = []
    for i in range(len(FLEETS)):
        requests.append(
            PredictRequest(
                f"p{i}", (), NOW, region=REGIONS[i], database_id=DATABASE_IDS[i]
            )
        )
    # Repeats hit the worker-side prediction cache; payloads must not
    # change between the batched and cached paths.
    for i in range(len(FLEETS)):
        requests.append(
            PredictRequest(
                f"q{i}", (), NOW, region=REGIONS[i], database_id=DATABASE_IDS[i]
            )
        )
    requests.append(
        PredictRequest("bad-db", (), NOW, region="R0", database_id="ghost")
    )
    requests.append(
        PredictRequest(
            "bad-config",
            (),
            NOW,
            region="R0",
            database_id=DATABASE_IDS[0],
            config="nope",
        )
    )
    for r in range(4):
        requests.append(ResumeScanRequest(f"scan-{r}", NOW, region=f"R{r}"))
    return requests


def test_sharded_equals_inprocess_end_to_end():
    """The acceptance-criteria property: one trace, two deployments,
    byte-identical payloads and resume-scan orderings."""
    trace = equivalence_trace()

    async def run_inprocess():
        server = inprocess_server()
        await server.start()
        try:
            return [await server.submit(r) for r in trace]
        finally:
            await server.stop()

    async def run_sharded():
        router = ShardRouter.build(
            sharded_fleet(),
            n_workers=4,
            settings=RouterSettings(health_interval_s=0.0),
        )
        await router.start()
        try:
            # Sequential submission pins batch_size=1 on both paths.
            return [await router.submit(r) for r in trace]
        finally:
            await router.stop()

    single = asyncio.run(run_inprocess())
    sharded = asyncio.run(run_sharded())
    assert len(single) == len(sharded) == len(trace)
    for request, a, b in zip(trace, single, sharded):
        assert normalized(a) == normalized(b), request.request_id


# ---------------------------------------------------------------------------
# Router backpressure, respawn, merged metrics
# ---------------------------------------------------------------------------


def test_router_window_backpressure_sheds_typed_overloaded():
    async def run():
        router = ShardRouter.build(
            {"R0": [("db-0", tuple(FLEETS[0]), True)]},
            n_workers=1,
            settings=RouterSettings(
                window=1, replicas=1, health_interval_s=0.0
            ),
        )
        await router.start()
        try:
            requests = [
                PredictRequest(
                    f"p{i}", (), NOW, region="R0", database_id="db-0"
                )
                for i in range(10)
            ]
            responses = await asyncio.gather(
                *(router.submit(r) for r in requests)
            )
        finally:
            await router.stop()
        return router, responses

    router, responses = asyncio.run(run())
    overloaded = [r for r in responses if isinstance(r, Overloaded)]
    served = [r for r in responses if isinstance(r, PredictResponse)]
    # The first submission occupies the only window slot; the other nine
    # are shed synchronously at the router, never reaching a worker.
    assert len(served) == 1
    assert len(overloaded) == 9
    assert router.stats.shed_overloaded == 9
    assert "saturated" in overloaded[0].message


def test_router_respawns_dead_worker_and_merges_metrics():
    async def run():
        router = ShardRouter.build(
            sharded_fleet(),
            n_workers=2,
            settings=RouterSettings(
                health_interval_s=0.1, breaker_recovery_s=0.1
            ),
        )
        await router.start()
        try:
            victim = router.handles[0]
            old_pid = victim.process.pid
            victim.process.terminate()
            deadline = asyncio.get_running_loop().time() + 60.0
            while True:
                if (
                    victim.alive
                    and victim.process.pid != old_pid
                    and victim.process.is_alive()
                ):
                    break
                if asyncio.get_running_loop().time() > deadline:
                    raise AssertionError("worker was not respawned in time")
                await asyncio.sleep(0.1)
            # Traffic flows again across the whole fleet, including the
            # shards whose primary is the respawned worker.
            for i in range(len(FLEETS)):
                response = await router.submit(
                    PredictRequest(
                        f"r{i}",
                        (),
                        NOW,
                        region=REGIONS[i],
                        database_id=DATABASE_IDS[i],
                    )
                )
                assert isinstance(response, PredictResponse)
            metrics = await router.submit(MetricsRequest("m0"))
            health = await router.submit(HealthRequest("h0"))
        finally:
            await router.stop()
        return router, metrics, health

    router, metrics, health = asyncio.run(run())
    assert router.stats.respawns >= 1
    assert health.stats["router_respawns"] >= 1
    assert health.stats["workers_live"] == 2
    # The exposition is the merge of both workers' registries.
    assert metrics.metric_count > 0
    assert "serving_requests" in metrics.body
