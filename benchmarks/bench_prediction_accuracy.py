"""Prediction-accuracy bench: quantifies the paper's 'sufficient in
practice' claim for the probabilistic forecaster, per usage archetype."""

from repro.experiments.accuracy import run_accuracy
from repro.experiments.common import BENCH_SCALE


def bench_prediction_accuracy(benchmark, record_table):
    result = benchmark.pedantic(
        run_accuracy, args=(BENCH_SCALE,), rounds=1, iterations=1
    )
    record_table("prediction_accuracy", result.table())
    rows = {r["archetype"]: r for r in result.rows()}
    # Recurring patterns predict well; unpredictable tails do not -- and
    # the policy's reactive fallback covers them (the paper's design).
    assert rows["nightly"]["precision"] > 0.8
    assert rows["daily"]["precision"] > 0.5
    assert rows["daily"]["recall"] > 0.5
    assert rows["fleet"]["precision"] > 0.4
    if "dormant" in rows:
        assert rows["dormant"]["precision"] < rows["daily"]["precision"]
