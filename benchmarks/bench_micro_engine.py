"""Micro-benchmarks for the discrete-event engine's scheduling paths.

:meth:`EventQueue.schedule_oneshot` exists because most simulation events
(trace replay, session ends, the periodic control-plane ticks) are never
cancelled, so the :class:`Timer` handle and its ``on_cancel`` closure that
:meth:`EventQueue.schedule` allocates per event are pure overhead on the
hot path.  This module bounds the saving and commits it as a baseline in
``benchmarks/results/BENCH_engine.json``:

* **Allocation saving**: scheduling N one-shot events must allocate
  strictly fewer bytes than scheduling N cancellable events (measured
  with ``tracemalloc``; the delta is the Timer + bound-method cost).
* **Dispatch identity**: both paths must dispatch the same events in the
  same (time, insertion-order) sequence -- the fast path changes the
  bookkeeping, never the semantics.
"""

import json
import time
import tracemalloc

from repro.simulation.engine import EventQueue

#: Events per measured batch; large enough that fixed costs vanish.
N_EVENTS = 100_000


def _noop(now: int) -> None:
    pass


def bench_schedule_timer(benchmark):
    """The cancellable path: Timer + on_cancel closure per event."""
    queue = EventQueue()

    def schedule_and_drain():
        queue.schedule(queue.now, _noop)
        queue.run_until(queue.now)

    benchmark(schedule_and_drain)


def bench_schedule_oneshot(benchmark):
    """The one-shot path: heap entry only, no handle allocated."""
    queue = EventQueue()

    def schedule_and_drain():
        queue.schedule_oneshot(queue.now, _noop)
        queue.run_until(queue.now)

    benchmark(schedule_and_drain)


def _allocated_bytes(schedule_batch) -> int:
    """Net bytes allocated by scheduling ``N_EVENTS`` events (heap kept
    alive so the entries themselves are counted)."""
    queue = EventQueue()
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    schedule_batch(queue)
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(queue) == N_EVENTS
    return after - before


def _drain_order(schedule_batch) -> list:
    """(time, call-index) sequence a batch dispatches in."""
    order = []
    queue = EventQueue()
    schedule_batch(queue, action=lambda now, o=order: o.append(now))
    queue.run_all()
    return order


def _batch_timer(queue: EventQueue, action=_noop) -> None:
    for i in range(N_EVENTS):
        queue.schedule(i % 97, action)


def _batch_oneshot(queue: EventQueue, action=_noop) -> None:
    for i in range(N_EVENTS):
        queue.schedule_oneshot(i % 97, action)


def bench_oneshot_allocation_saving(results_dir):
    """One-shot scheduling must allocate strictly less than Timer-based
    scheduling, and both must dispatch identically."""
    assert _drain_order(_batch_timer) == _drain_order(_batch_oneshot)

    timer_bytes = _allocated_bytes(_batch_timer)
    oneshot_bytes = _allocated_bytes(_batch_oneshot)

    start = time.perf_counter()
    queue = EventQueue()
    _batch_timer(queue)
    queue.run_all()
    timer_s = time.perf_counter() - start

    start = time.perf_counter()
    queue = EventQueue()
    _batch_oneshot(queue)
    queue.run_all()
    oneshot_s = time.perf_counter() - start

    baseline = {
        "n_events": N_EVENTS,
        "timer_bytes_per_event": round(timer_bytes / N_EVENTS, 1),
        "oneshot_bytes_per_event": round(oneshot_bytes / N_EVENTS, 1),
        "bytes_saved_per_event": round((timer_bytes - oneshot_bytes) / N_EVENTS, 1),
        "timer_schedule_drain_s": round(timer_s, 4),
        "oneshot_schedule_drain_s": round(oneshot_s, 4),
    }
    path = results_dir / "BENCH_engine.json"
    path.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(baseline, indent=2))
    assert oneshot_bytes < timer_bytes, (
        f"one-shot scheduling allocated {oneshot_bytes} bytes, expected "
        f"less than the Timer path's {timer_bytes}"
    )
