"""Columnar (struct-of-arrays) region engine.

The per-actor simulator (:mod:`repro.simulation.actor`) keeps every
database's FSM state -- lifecycle phase, pause/resume timers, accounting
anchors, history cursors -- in a dedicated Python object, plus one bound
method closure per scheduled event.  That representation tops out around a
few hundred thousand databases before object overhead dominates.

This module re-hosts exactly the same state machine over numpy
struct-of-arrays owned by the region: one ``int8`` phase column, ``int64``
timer/anchor columns, bool flag columns, and CSR (offsets + flat values)
layouts for each database's sessions and maintenance operations.  Events
become flat heap tuples ``(time, seq, kind, db_index, epoch)`` instead of
closures; cancellable wake timers become an epoch counter per database
(a stale pop is skipped exactly like a cancelled :class:`~repro.simulation.
engine.Timer`).

The engine is a line-by-line port of the actor code paths: every schedule
call, RNG draw, fault-injector consult, policy decision, metadata write,
and accounting call happens in the same order with the same arguments, so
a columnar run is **byte-identical** to an actor run (the property suite
in ``tests/simulation/test_columnar.py`` proves it over seeded scenarios,
including armed fault plans).  Where the two representations must agree is
pinned down in ``docs/fleet_scale.md``.

Storage/accounting sit behind three small seams (history, metadata,
accounting) so the same handlers drive two backends:

* the **full** backend in this module uses the real per-database
  :class:`~repro.storage.history.HistoryStore`, the region
  :class:`~repro.storage.metadata.MetadataStore`, and
  :class:`~repro.simulation.results.DatabaseOutcome` objects -- this is
  what :func:`simulate_region_columnar` runs and what the equivalence
  suite compares against the actors;
* the **lean** backend in :mod:`repro.simulation.fleet` replaces them with
  region-level arrays (cursor-based history views, columnar metadata,
  scalar accounting) for million-database runs.

:class:`ActorView` preserves the actor API as a thin read view for tests,
observability, and debugging.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster import Cluster
from repro.config import ProRPConfig
from repro.core.fast_predictor import FastPredictor, get_fast_predictor
from repro.core.lifecycle import (
    STATE_CODES,
    STATE_FROM_CODE,
    LifecycleState,
    LifecycleTransition,
    transition_edge_codes,
)
from repro.core.policy import (
    IdleDecision,
    decide_after_logical_pause,
    decide_on_idle,
    logical_pause_wake_time,
    prediction_expired,
    reactive_wake_time,
)
from repro.core.prediction_cache import PredictionCache
from repro.core.predictor import predict_next_activity
from repro.errors import FaultInjectedError, SimulationError
from repro.faults.resilience import CircuitBreaker
from repro.faults.runtime import FAULTS
from repro.observability.runtime import OBS
from repro.simulation.actor import PREDICTOR_FAULT_POINT
from repro.simulation.results import DatabaseOutcome
from repro.storage.history import HistoryStore
from repro.storage.metadata import DatabaseState, MetadataStore
from repro.types import (
    ActivityTrace,
    EventType,
    PredictedActivity,
    Session,
)

# ---------------------------------------------------------------------------
# Struct-of-arrays layout constants (documented in docs/fleet_scale.md)
# ---------------------------------------------------------------------------

#: Lifecycle phase codes (shared with repro.core.lifecycle.STATE_CODES).
PH_RESUMED = STATE_CODES[LifecycleState.RESUMED]
PH_LOGICAL = STATE_CODES[LifecycleState.LOGICALLY_PAUSED]
PH_PHYSICAL = STATE_CODES[LifecycleState.PHYSICALLY_PAUSED]
PH_RESUMING = STATE_CODES[LifecycleState.RESUMING]

#: Event kinds of the flat heap tuples.
EV_SESSION_START = 0
EV_SESSION_END = 1
EV_RESUME_COMPLETE = 2
EV_WAKE = 3
EV_MAINTENANCE = 4
EV_RESUME_OP = 5

#: Pause-origin codes (the actor's ``_pause_origin`` string field).
ORIGIN_NONE = 0
ORIGIN_PREWARM = 1
ORIGIN_MAINTENANCE = 2

#: Sentinel for "no timestamp" columns (valid simulated times are >= 0).
NONE_TS = -1

#: Integer edge table of Figure 4: transition -> (from_code, to_code).
_EDGE_CODES: Dict[LifecycleTransition, Tuple[int, int]] = transition_edge_codes()

#: Metadata state enums by phase code (full backend writes these).
_META_STATE = {
    PH_RESUMED: DatabaseState.RESUMED,
    PH_LOGICAL: DatabaseState.LOGICAL_PAUSE,
    PH_PHYSICAL: DatabaseState.PHYSICAL_PAUSE,
    PH_RESUMING: DatabaseState.RESUMING,
}


def sessions_to_csr(
    session_lists: Sequence[Sequence[Session]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten per-database session lists into (offsets, starts, ends).

    ``offsets`` has length D+1; database ``d`` owns the half-open slice
    ``[offsets[d], offsets[d+1])`` of the flat arrays.
    """
    counts = np.fromiter(
        (len(sessions) for sessions in session_lists),
        dtype=np.int64,
        count=len(session_lists),
    )
    offsets = np.zeros(len(session_lists) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    starts = np.empty(total, dtype=np.int64)
    ends = np.empty(total, dtype=np.int64)
    pos = 0
    for sessions in session_lists:
        for session in sessions:
            starts[pos] = session.start
            ends[pos] = session.end
            pos += 1
    return offsets, starts, ends


def first_relevant_indices(
    offsets: np.ndarray, ends: np.ndarray, sim_start: int
) -> np.ndarray:
    """Vectorised equivalent of the actors' skip-while loop: for each
    database, the global index of its first session (or maintenance op)
    with ``end > sim_start``; equals ``offsets[d+1]`` when none remain."""
    if len(ends) == 0:
        return offsets[:-1].copy()
    # Within each database's sorted slice, count the prefix of entries
    # with end <= sim_start.
    skipped = ends <= sim_start
    cum = np.concatenate(([0], np.cumsum(skipped)))
    return offsets[:-1] + (cum[offsets[1:]] - cum[offsets[:-1]])


class ColumnarState:
    """The struct-of-arrays FSM state of one region's fleet.

    One row per database; every column is a flat numpy array.  This is the
    exact per-actor state of :class:`repro.simulation.actor._BaseActor`
    (plus the proactive prediction fields), transposed.
    """

    def __init__(
        self,
        n: int,
        sess_offsets: np.ndarray,
        sess_starts: np.ndarray,
        sess_ends: np.ndarray,
        maint_offsets: np.ndarray,
        maint_starts: np.ndarray,
        maint_ends: np.ndarray,
        created_at: np.ndarray,
    ):
        self.n = n
        # Trace replay (CSR) -----------------------------------------------
        self.sess_offsets = sess_offsets
        self.sess_starts = sess_starts
        self.sess_ends = sess_ends
        self.maint_offsets = maint_offsets
        self.maint_starts = maint_starts
        self.maint_ends = maint_ends
        self.created_at = created_at
        # FSM --------------------------------------------------------------
        self.phase = np.full(n, PH_RESUMED, dtype=np.int8)
        self.session_idx = sess_offsets[:-1].astype(np.int64).copy()
        self.maint_idx = maint_offsets[:-1].astype(np.int64).copy()
        self.maint_until = np.zeros(n, dtype=np.int64)
        self.maint_from_physical = np.zeros(n, dtype=bool)
        # Timers: a wake is live iff wake_at != NONE_TS; wake_epoch stamps
        # heap entries so stale pops are skipped (the cancelled-Timer path).
        self.wake_epoch = np.zeros(n, dtype=np.int64)
        self.wake_at = np.full(n, NONE_TS, dtype=np.int64)
        # Accounting anchors (the actor's Optional[int] fields).
        self.active_since = np.full(n, NONE_TS, dtype=np.int64)
        self.pause_start = np.full(n, NONE_TS, dtype=np.int64)
        self.pause_origin = np.full(n, ORIGIN_NONE, dtype=np.int8)
        self.resume_started_at = np.full(n, NONE_TS, dtype=np.int64)
        self.idle_since = np.full(n, NONE_TS, dtype=np.int64)
        self.deferred_session_end = np.zeros(n, dtype=bool)
        self.holds_slot = np.zeros(n, dtype=bool)
        self.fault_degraded = np.zeros(n, dtype=bool)
        # Prediction state (proactive only).
        self.old = np.zeros(n, dtype=bool)
        self.pred_start = np.zeros(n, dtype=np.int64)
        self.pred_end = np.zeros(n, dtype=np.int64)
        self.pred_conf = np.zeros(n, dtype=np.float64)
        # Lifecycle monotonicity guard (Lifecycle._last_transition_time).
        self.last_transition = np.full(n, -1, dtype=np.int64)

    def nbytes(self) -> int:
        """Total array bytes (reported by the fleet-scale benchmark)."""
        return sum(
            arr.nbytes
            for arr in vars(self).values()
            if isinstance(arr, np.ndarray)
        )


# ---------------------------------------------------------------------------
# Full backends: the real stores, one per database (equivalence mode)
# ---------------------------------------------------------------------------


class StoreAccounting:
    """Accounting seam over real :class:`DatabaseOutcome` objects.

    ``stream`` (a :class:`repro.observability.slo.KpiStream`) mirrors the
    KPI events into windowed SLO series as they happen; it only writes
    metrics, so the outcome ledgers stay byte-identical with it attached.
    """

    def __init__(self, outcomes: List[DatabaseOutcome], stream=None):
        self.outcomes = outcomes
        self.stream = stream

    def add_used(self, d: int, start: int, end: int) -> None:
        self.outcomes[d].add_used(start, end)
        if self.stream is not None:
            self.stream.used(start, end)

    def add_unavailable(self, d: int, start: int, end: int) -> None:
        self.outcomes[d].add_unavailable(start, end)
        if self.stream is not None:
            self.stream.unavailable(start, end)

    def add_idle(self, d: int, start: int, end: int, cause: str) -> None:
        self.outcomes[d].add_idle(start, end, cause)
        if self.stream is not None:
            self.stream.idle(start, end)

    def record_login(
        self, d: int, t: int, served: bool, faulted: bool = False
    ) -> None:
        self.outcomes[d].record_login(t, served=served, faulted=faulted)
        if self.stream is not None:
            self.stream.login(t, served, faulted)

    def record_workflow(self, d: int, t: int, kind: str) -> None:
        self.outcomes[d].record_workflow(t, kind)
        if self.stream is not None:
            self.stream.workflow(t, kind)

    def record_proactive_outcome(self, d: int, t: int, correct: bool) -> None:
        self.outcomes[d].record_proactive_outcome(t, correct=correct)

    def record_prediction(
        self, d: int, now: int, start: int, end: int, confidence: float
    ) -> None:
        self.outcomes[d].record_prediction(now, start, end, confidence)


class StoreHistory:
    """History seam over real per-database :class:`HistoryStore` objects."""

    def __init__(self, stores: List[HistoryStore]):
        self.stores = stores

    def record(self, d: int, t: int, event_type: EventType) -> None:
        self.stores[d].insert_history(t, event_type)

    def trim(self, d: int, history_days: int, now: int) -> bool:
        return self.stores[d].delete_old_history(history_days, now).old

    def login_array(self, d: int) -> np.ndarray:
        return self.stores[d].login_array()

    def login_version(self, d: int) -> int:
        return self.stores[d].login_version

    def login_timestamps(self, d: int) -> Sequence[int]:
        return self.stores[d].login_timestamps()

    def store(self, d: int) -> HistoryStore:
        return self.stores[d]


class NullHistory:
    """The reactive baseline records no history (actor parity)."""

    def record(self, d: int, t: int, event_type: EventType) -> None:
        pass


class StoreMetadata:
    """Metadata seam over the real region :class:`MetadataStore`."""

    def __init__(self, metadata: MetadataStore, ids: Sequence[str]):
        self.metadata = metadata
        self.ids = ids

    def register(self, d: int, created_at: int, node_id: str) -> None:
        self.metadata.register(
            self.ids[d], created_at=created_at, node_id=node_id
        )

    def set_state(self, d: int, phase_code: int) -> None:
        self.metadata.set_state(self.ids[d], _META_STATE[phase_code])

    def record_physical_pause(self, d: int, pred_start: int) -> None:
        self.metadata.record_physical_pause(self.ids[d], pred_start)

    def set_node(self, d: int, node_id: str) -> None:
        self.metadata.set_node(self.ids[d], node_id)


class StoreCluster:
    """Cluster seam: real :class:`Cluster` keyed by database id strings."""

    def __init__(self, cluster: Cluster, ids: Sequence[str]):
        self.cluster = cluster
        self.ids = ids

    def place(self, d: int) -> str:
        return self.cluster.place(self.ids[d]).node_id

    def allocate(self, d: int) -> Tuple[int, str]:
        outcome = self.cluster.allocate(self.ids[d])
        return outcome.latency_s, outcome.node_id

    def release(self, d: int) -> None:
        self.cluster.release(self.ids[d])


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class ColumnarRegionEngine:
    """Event-driven FSM over struct-of-arrays state.

    A mechanical port of :class:`repro.simulation.actor._BaseActor` /
    :class:`ReactiveActor` / :class:`ProactiveActor` plus the region loop
    of ``_simulate_region``: every schedule call consumes one sequence
    number in the same order, every cluster allocation draws the shared
    RNG in the same order, and every fault point is consulted in the same
    order as the actor path, which is what makes the two byte-identical.
    """

    def __init__(
        self,
        state: ColumnarState,
        proactive: bool,
        config: ProRPConfig,
        sim_start: int,
        sim_end: int,
        acct,
        hist,
        meta,
        cluster: StoreCluster,
        fast_predictor: Optional[FastPredictor] = None,
        caches: Optional[List[Optional[PredictionCache]]] = None,
        breaker: Optional[CircuitBreaker] = None,
        prorp_outages: Sequence[Tuple[int, int]] = (),
        collect_predictions: bool = False,
        preplaced_nodes: Optional[Sequence[str]] = None,
        bank=None,
    ):
        self.s = state
        self.proactive = proactive
        self.config = config
        self.sim_start = sim_start
        self.sim_end = sim_end
        self.acct = acct
        self.hist = hist
        self.meta = meta
        self.cluster = cluster
        self.fast_predictor = fast_predictor
        self.caches = caches if caches is not None else [None] * state.n
        self.breaker = breaker
        self.prorp_outages = tuple(prorp_outages)
        self.collect_predictions = collect_predictions
        #: Node ids from a bulk ``place_fleet`` (lean mode); None means
        #: ``_start`` places each database itself (actor parity).
        self.preplaced_nodes = preplaced_nodes
        #: Region-shared predictor bank (repro.tuning.bank); None keeps the
        #: paper's single sliding-window path.  A sliding-only bank is a
        #: pure delegate, byte-identical to None.
        self.bank = bank
        self._now = sim_start
        self._seq = 0
        self._heap: List[Tuple[int, int, int, int, int]] = []
        #: Dispatched after the heap pops an EV_RESUME_OP entry; installed
        #: by the region driver once the resume operation exists.
        self.on_resume_op: Optional[Callable[[int], None]] = None
        self.events_dispatched = 0

    # -- scheduling --------------------------------------------------------

    @property
    def now(self) -> int:
        return self._now

    def _push(self, time: int, kind: int, d: int, epoch: int = 0) -> None:
        """Mirror of ``EventQueue.schedule(_oneshot)``: consumes exactly
        one sequence number, so same-time ordering matches the actors."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before now={self._now}"
            )
        heapq.heappush(self._heap, (int(time), self._seq, kind, d, epoch))
        self._seq += 1

    def _cancel_wake(self, d: int) -> None:
        self.s.wake_epoch[d] += 1
        self.s.wake_at[d] = NONE_TS

    def _schedule_wake(self, d: int, at: int) -> None:
        self._cancel_wake(d)
        at = max(at, self._now + 1)
        if at < self.sim_end:
            self.s.wake_at[d] = at
            self._push(at, EV_WAKE, d, int(self.s.wake_epoch[d]))

    # -- lifecycle ---------------------------------------------------------

    def _apply(self, d: int, transition: LifecycleTransition, now: int) -> None:
        """``Lifecycle.apply`` over the phase column: same validation,
        same observability counter, same span attributes."""
        from_code, to_code = _EDGE_CODES[transition]
        if self.s.phase[d] != from_code:
            raise SimulationError(
                f"{self._db_label(d)}: illegal transition {transition.value} "
                f"from {STATE_FROM_CODE[self.s.phase[d]].value} at t={now} "
                f"(requires {STATE_FROM_CODE[from_code].value})"
            )
        if now < self.s.last_transition[d]:
            raise SimulationError(
                f"{self._db_label(d)}: transition at t={now} is before the "
                f"previous transition at t={int(self.s.last_transition[d])}"
            )
        if OBS.enabled:
            OBS.metrics.counter(f"lifecycle.transition.{transition.value}").inc()
            span = OBS.tracer.current_span
            if span is not None:
                span.set_attribute("transition", transition.value)
                span.set_attribute("db", self._db_label(d))
        self.s.phase[d] = to_code
        self.s.last_transition[d] = now

    def _db_label(self, d: int) -> str:
        ids = getattr(self.meta, "ids", None)
        return ids[d] if ids is not None else f"db[{d}]"

    # -- cluster slots -----------------------------------------------------

    def _acquire_slot(self, d: int) -> int:
        if self.s.holds_slot[d]:
            raise SimulationError(f"{self._db_label(d)}: slot already held")
        latency, node_id = self.cluster.allocate(d)
        self.s.holds_slot[d] = True
        self.meta.set_node(d, node_id)
        return latency

    def _release_slot(self, d: int) -> None:
        if not self.s.holds_slot[d]:
            raise SimulationError(f"{self._db_label(d)}: no slot to release")
        self.cluster.release(d)
        self.s.holds_slot[d] = False

    # -- prediction helpers ------------------------------------------------

    def _next_activity(self, d: int) -> PredictedActivity:
        return PredictedActivity(
            int(self.s.pred_start[d]),
            int(self.s.pred_end[d]),
            float(self.s.pred_conf[d]),
        )

    def _set_next_activity(self, d: int, prediction: PredictedActivity) -> None:
        self.s.pred_start[d] = prediction.start
        self.s.pred_end[d] = prediction.end
        self.s.pred_conf[d] = prediction.confidence

    def _prorp_down(self, now: int) -> bool:
        return any(start <= now < end for start, end in self.prorp_outages)

    def _prediction_config(self, d: int, now: int) -> ProRPConfig:
        if not self.config.auto_seasonality:
            return self.config
        from repro.core.seasonality import config_for_seasonality, detect_seasonality

        diagnosis = detect_seasonality(
            self.hist.login_timestamps(d), now, self.config.history_days
        )
        return config_for_seasonality(self.config, diagnosis.seasonality)

    def _refresh_prediction(self, d: int, now: int) -> None:
        """Port of ``ProactiveActor._refresh_prediction``."""
        s = self.s
        if self._prorp_down(now):
            s.old[d] = False
            self._set_next_activity(d, PredictedActivity.none())
            return
        if self.breaker is not None and not self.breaker.allow(now):
            s.old[d] = False
            self._set_next_activity(d, PredictedActivity.none())
            s.fault_degraded[d] = True
            return
        s.old[d] = self.hist.trim(d, self.config.history_days, now)
        if not s.old[d]:
            self._set_next_activity(d, PredictedActivity.none())
            s.fault_degraded[d] = False
            return
        try:
            self._predict(d, now)
        except FaultInjectedError:
            if self.breaker is not None:
                self.breaker.record_failure(now)
            s.old[d] = False
            self._set_next_activity(d, PredictedActivity.none())
            s.fault_degraded[d] = True
            return
        if self.breaker is not None:
            self.breaker.record_success(now)
        s.fault_degraded[d] = False
        if self.collect_predictions:
            self.acct.record_prediction(
                d,
                now,
                int(s.pred_start[d]),
                int(s.pred_end[d]),
                float(s.pred_conf[d]),
            )

    def _predict(self, d: int, now: int) -> None:
        """Port of ``ProactiveActor._predict`` (the latency-measuring
        branch is not ported: the region routes that mode to the actors)."""
        if FAULTS.enabled and FAULTS.injector.should_fire(
            PREDICTOR_FAULT_POINT, now
        ):
            raise FaultInjectedError(
                PREDICTOR_FAULT_POINT, "injected: predictor backend failure"
            )
        config = self._prediction_config(d, now)
        if self.bank is not None:
            self._set_next_activity(
                d,
                self.bank.predict(
                    d,
                    now,
                    lambda: self.hist.login_array(d),
                    lambda: self._predict_sliding(d, config, now),
                ),
            )
            return
        self._set_next_activity(d, self._predict_sliding(d, config, now))

    def _predict_sliding(
        self, d: int, config: ProRPConfig, now: int
    ) -> PredictedActivity:
        """The paper's sliding-window path (Algorithm 4), cache included."""
        if self.fast_predictor is not None:
            if config is self.config:
                predictor = self.fast_predictor
            else:
                predictor = get_fast_predictor(config)
            cache = self.caches[d]
            if cache is None:
                return predictor.predict(self.hist.login_array(d), now)
            login_version = self.hist.login_version(d)
            cached = cache.get(login_version, config, now)
            if cached is not None:
                return cached
            prediction = predictor.predict(self.hist.login_array(d), now)
            cache.put(login_version, config, now, prediction)
            return prediction
        return predict_next_activity(self.hist.store(d), config, now)

    # -- settle-phase batching (region-driven) -----------------------------

    def initial_prediction_request(self, d: int) -> Optional[ProRPConfig]:
        """Port of ``ProactiveActor.initial_prediction_request``."""
        if (
            self.caches[d] is None
            or self.fast_predictor is None
            or self.sim_start <= 0
        ):
            return None
        s = self.s
        index = int(s.sess_offsets[d])
        hi = int(s.sess_offsets[d + 1])
        while index < hi and s.sess_ends[index] <= self.sim_start:
            index += 1
        if index >= hi:
            return None  # start() goes to physical pause, no prediction
        if s.created_at[d] > self.sim_start:
            return None  # not born yet: physical pause until first login
        if s.sess_starts[index] <= self.sim_start:
            return None  # mid-session: active, no idle settling
        if self._prorp_down(self.sim_start):
            return None  # refresh degrades to reactive without predicting
        if not self.hist.trim(d, self.config.history_days, self.sim_start):
            return None  # new database: refresh skips the predictor
        return self._prediction_config(d, self.sim_start)

    def seed_prediction(
        self, d: int, config: ProRPConfig, now: int, prediction: PredictedActivity
    ) -> None:
        cache = self.caches[d]
        assert cache is not None
        cache.put(self.hist.login_version(d), config, now, prediction)

    def seed_initial_predictions(self) -> None:
        """Port of ``region._seed_initial_predictions`` over indices."""
        if self.fast_predictor is None:
            return
        groups: Dict[ProRPConfig, List[int]] = {}
        for d in range(self.s.n):
            request = self.initial_prediction_request(d)
            if request is not None:
                groups.setdefault(request, []).append(d)
        for group_config, members in groups.items():
            predictor = (
                self.fast_predictor
                if group_config == self.config
                else get_fast_predictor(group_config)
            )
            predictions = predictor.predict_fleet(
                [self.hist.login_array(d) for d in members], self.sim_start
            )
            for d, prediction in zip(members, predictions):
                self.seed_prediction(d, group_config, self.sim_start, prediction)

    # -- initialisation ----------------------------------------------------

    def start(self, d: int) -> None:
        """Port of ``_BaseActor.start``."""
        s = self.s
        if self.preplaced_nodes is not None:
            node_id = self.preplaced_nodes[d]
        else:
            node_id = self.cluster.place(d)
        self.meta.register(d, int(s.created_at[d]), node_id)
        self._schedule_first_maintenance(d)
        idx = int(s.session_idx[d])
        hi = int(s.sess_offsets[d + 1])
        while idx < hi and s.sess_ends[idx] <= self.sim_start:
            idx += 1
        s.session_idx[d] = idx
        if idx >= hi:
            self._enter_initial_physical_pause(d)
            return
        cur_start = int(s.sess_starts[idx])
        if s.created_at[d] > self.sim_start:
            # Not born yet: physically paused until its first login.
            self._enter_initial_physical_pause(d)
            self._push(cur_start, EV_SESSION_START, d)
            return
        if cur_start <= self.sim_start:
            # Mid-session at simulation start: resumed and active.
            self._acquire_slot(d)
            self.meta.set_state(d, PH_RESUMED)
            s.active_since[d] = self.sim_start
            self._push(
                min(int(s.sess_ends[idx]), self.sim_end), EV_SESSION_END, d
            )
        else:
            # Idle at simulation start: settle through the policy.
            self._enter_initial_idle(d)
            self._push(cur_start, EV_SESSION_START, d)

    def _enter_initial_physical_pause(self, d: int) -> None:
        self.meta.set_state(d, PH_PHYSICAL)
        self.s.phase[d] = PH_PHYSICAL  # direct set: no Figure 4 transition

    def _enter_initial_idle(self, d: int) -> None:
        if self.proactive:
            self._handle_idle(d, self.sim_start)
        else:
            self._enter_initial_physical_pause(d)

    # -- maintenance (Section 3.3) -----------------------------------------

    def _schedule_first_maintenance(self, d: int) -> None:
        s = self.s
        idx = int(s.maint_idx[d])
        hi = int(s.maint_offsets[d + 1])
        while idx < hi and s.maint_ends[idx] <= self.sim_start:
            idx += 1
        s.maint_idx[d] = idx
        if idx < hi:
            op_start = int(s.maint_starts[idx])
            if op_start < self.sim_end:
                self._push(max(op_start, self.sim_start), EV_MAINTENANCE, d)

    def _on_maintenance_start(self, d: int, now: int) -> None:
        """Port of ``_BaseActor._on_maintenance_start``."""
        s = self.s
        idx = int(s.maint_idx[d])
        op_end = int(s.maint_ends[idx])
        s.maint_idx[d] = idx + 1
        if idx + 1 < s.maint_offsets[d + 1]:
            nxt_start = int(s.maint_starts[idx + 1])
            if nxt_start < self.sim_end:
                self._push(nxt_start, EV_MAINTENANCE, d)
        s.maint_until[d] = max(
            int(s.maint_until[d]), min(op_end, self.sim_end)
        )
        phase = s.phase[d]
        if phase == PH_PHYSICAL:
            self._acquire_slot(d)
            self._apply(d, LifecycleTransition.MAINTENANCE_RESUME, now)
            self.meta.set_state(d, PH_LOGICAL)
            self.acct.record_workflow(d, now, "maintenance_resume")
            s.pause_start[d] = now
            s.pause_origin[d] = ORIGIN_MAINTENANCE
            s.maint_from_physical[d] = True
            self._schedule_wake(d, int(s.maint_until[d]))
        elif phase == PH_LOGICAL:
            # Resources already up; keep the pending wake from reclaiming
            # them while the operation runs.
            if s.wake_at[d] != NONE_TS and s.wake_at[d] < s.maint_until[d]:
                self._schedule_wake(d, int(s.maint_until[d]))
        # RESUMED / RESUMING: the operation rides on customer activity.

    def _maintenance_hold(self, d: int, now: int) -> bool:
        if now < self.s.maint_until[d]:
            self._schedule_wake(d, int(self.s.maint_until[d]))
            return True
        return False

    def _close_maintenance_pause(self, d: int, now: int) -> bool:
        s = self.s
        if s.pause_origin[d] != ORIGIN_MAINTENANCE:
            return False
        from_physical = bool(s.maint_from_physical[d])
        self.acct.add_idle(d, int(s.pause_start[d]), now, "maintenance")
        if from_physical:
            s.pause_start[d] = NONE_TS
            s.pause_origin[d] = ORIGIN_NONE
            s.maint_from_physical[d] = False
            return True
        s.pause_start[d] = now
        s.pause_origin[d] = ORIGIN_NONE
        s.maint_from_physical[d] = False
        return False

    def _begin_idle(self, d: int, now: int) -> bool:
        s = self.s
        s.idle_since[d] = now
        if now >= s.maint_until[d]:
            return False
        if not s.holds_slot[d]:
            self._acquire_slot(d)
        self._apply(d, LifecycleTransition.IDLE_TO_LOGICAL, now)
        self.meta.set_state(d, PH_LOGICAL)
        s.pause_start[d] = now
        s.pause_origin[d] = ORIGIN_MAINTENANCE
        self._schedule_wake(d, int(s.maint_until[d]))
        return True

    # -- trace events ------------------------------------------------------

    def _schedule_next_session(self, d: int) -> None:
        s = self.s
        idx = int(s.session_idx[d]) + 1
        s.session_idx[d] = idx
        if idx < s.sess_offsets[d + 1]:
            nxt_start = int(s.sess_starts[idx])
            if nxt_start < self.sim_end:
                self._push(nxt_start, EV_SESSION_START, d)

    def _on_session_start(self, d: int, now: int) -> None:
        """Port of ``_BaseActor._on_session_start``."""
        s = self.s
        self.hist.record(d, now, EventType.ACTIVITY_START)
        if self.bank is not None:
            self.bank.observe_login(d, now)
        s.idle_since[d] = NONE_TS
        phase = s.phase[d]
        if phase == PH_LOGICAL:
            self._cancel_wake(d)
            self._apply(d, LifecycleTransition.LOGICAL_TO_RESUMED, now)
            self.meta.set_state(d, PH_RESUMED)
            self.acct.record_login(d, now, served=True)
            self._settle_idle_interval(d, now, resumed_by_login=True)
            s.active_since[d] = now
            end = min(int(s.sess_ends[s.session_idx[d]]), self.sim_end)
            self._push(end, EV_SESSION_END, d)
        elif phase == PH_PHYSICAL:
            latency = self._acquire_slot(d)
            self._apply(d, LifecycleTransition.REACTIVE_RESUME_START, now)
            self.meta.set_state(d, PH_RESUMING)
            self.acct.record_login(
                d, now, served=False, faulted=bool(s.fault_degraded[d])
            )
            self.acct.record_workflow(d, now, "reactive_resume")
            s.resume_started_at[d] = now
            s.deferred_session_end[d] = False
            self._push(now + latency, EV_RESUME_COMPLETE, d)
            end = min(int(s.sess_ends[s.session_idx[d]]), self.sim_end)
            self._push(end, EV_SESSION_END, d)
        elif phase == PH_RESUMING:
            self.acct.record_login(
                d, now, served=False, faulted=bool(s.fault_degraded[d])
            )
            s.resume_started_at[d] = now
            s.deferred_session_end[d] = False
            end = min(int(s.sess_ends[s.session_idx[d]]), self.sim_end)
            self._push(end, EV_SESSION_END, d)
        else:
            raise SimulationError(
                f"{self._db_label(d)}: session start at t={now} while already "
                f"{STATE_FROM_CODE[phase].value}"
            )

    def _on_session_end(self, d: int, now: int) -> None:
        """Port of ``_BaseActor._on_session_end``."""
        s = self.s
        self.hist.record(d, now, EventType.ACTIVITY_END)
        phase = s.phase[d]
        if phase == PH_RESUMED:
            if s.active_since[d] != NONE_TS:
                self.acct.add_used(d, int(s.active_since[d]), now)
                s.active_since[d] = NONE_TS
            self._schedule_next_session(d)
            self._handle_idle(d, now)
        elif phase == PH_RESUMING:
            if s.resume_started_at[d] != NONE_TS:
                self.acct.add_unavailable(d, int(s.resume_started_at[d]), now)
                s.resume_started_at[d] = NONE_TS
            s.deferred_session_end[d] = True
            self._schedule_next_session(d)
        else:
            raise SimulationError(
                f"{self._db_label(d)}: session end at t={now} in state "
                f"{STATE_FROM_CODE[phase].value}"
            )

    def _on_resume_complete(self, d: int, now: int) -> None:
        """Port of ``_BaseActor._on_resume_complete``."""
        s = self.s
        if s.phase[d] != PH_RESUMING:
            return  # stale completion (e.g. past sim end clipping)
        self._apply(d, LifecycleTransition.REACTIVE_RESUME_COMPLETE, now)
        self.meta.set_state(d, PH_RESUMED)
        if s.resume_started_at[d] != NONE_TS:
            self.acct.add_unavailable(d, int(s.resume_started_at[d]), now)
            s.resume_started_at[d] = NONE_TS
        if s.deferred_session_end[d]:
            s.deferred_session_end[d] = False
            self._handle_idle(d, now)
        else:
            s.active_since[d] = now

    # -- idle accounting ---------------------------------------------------

    def _settle_idle_interval(self, d: int, now: int, resumed_by_login: bool) -> None:
        s = self.s
        if s.pause_start[d] == NONE_TS:
            return
        pause_start = int(s.pause_start[d])
        if s.pause_origin[d] == ORIGIN_PREWARM:
            cause = "correct_proactive" if resumed_by_login else "wrong_proactive"
            self.acct.add_idle(d, pause_start, now, cause)
            self.acct.record_proactive_outcome(d, now, correct=resumed_by_login)
        elif s.pause_origin[d] == ORIGIN_MAINTENANCE:
            self.acct.add_idle(d, pause_start, now, "maintenance")
        else:
            self.acct.add_idle(d, pause_start, now, "logical_pause")
        s.pause_start[d] = NONE_TS
        s.pause_origin[d] = ORIGIN_NONE
        s.maint_from_physical[d] = False

    def _enter_physical_pause(
        self, d: int, now: int, transition: LifecycleTransition, pred_start: int
    ) -> None:
        self._apply(d, transition, now)
        self.meta.record_physical_pause(d, pred_start)
        self.acct.record_workflow(d, now, "physical_pause")
        if self.s.holds_slot[d]:
            self._release_slot(d)

    def finalize(self, d: int, sim_end: int) -> None:
        """Port of ``_BaseActor.finalize``."""
        s = self.s
        phase = s.phase[d]
        if phase == PH_RESUMED and s.active_since[d] != NONE_TS:
            self.acct.add_used(d, int(s.active_since[d]), sim_end)
            s.active_since[d] = NONE_TS
        elif phase == PH_LOGICAL:
            self._settle_idle_interval(d, sim_end, resumed_by_login=False)
        elif phase == PH_RESUMING and s.resume_started_at[d] != NONE_TS:
            self.acct.add_unavailable(d, int(s.resume_started_at[d]), sim_end)
            s.resume_started_at[d] = NONE_TS

    # -- policy: reactive baseline -----------------------------------------

    def _handle_idle_reactive(self, d: int, now: int) -> None:
        """Port of ``ReactiveActor._handle_idle``."""
        if self._begin_idle(d, now):
            return  # held by a running maintenance operation
        self._apply(d, LifecycleTransition.IDLE_TO_LOGICAL, now)
        self.meta.set_state(d, PH_LOGICAL)
        self.acct.record_workflow(d, now, "logical_pause")
        self.s.pause_start[d] = now
        self._schedule_wake(
            d, reactive_wake_time(now, self.config.logical_pause_s)
        )

    def _on_wake_reactive(self, d: int, now: int) -> None:
        """Port of ``ReactiveActor._on_wake``."""
        s = self.s
        s.wake_at[d] = NONE_TS  # the actor's `_wake_timer = None`
        if s.phase[d] != PH_LOGICAL:
            return  # stale timer
        if self._maintenance_hold(d, now):
            return
        if self._close_maintenance_pause(d, now):
            self._enter_physical_pause(
                d, now, LifecycleTransition.LOGICAL_TO_PHYSICAL, pred_start=0
            )
            s.idle_since[d] = NONE_TS
            return
        idle_since = int(s.idle_since[d]) if s.idle_since[d] != NONE_TS else now
        if now < idle_since + self.config.logical_pause_s:
            # Maintenance segmented the pause: wait out the remainder of l.
            self._schedule_wake(d, idle_since + self.config.logical_pause_s)
            return
        self._settle_idle_interval(d, now, resumed_by_login=False)
        self._enter_physical_pause(
            d, now, LifecycleTransition.LOGICAL_TO_PHYSICAL, pred_start=0
        )
        s.idle_since[d] = NONE_TS

    # -- policy: proactive (Algorithm 1) -----------------------------------

    def _handle_idle_proactive(self, d: int, now: int) -> None:
        """Port of ``ProactiveActor._handle_idle``."""
        s = self.s
        if self._begin_idle(d, now):
            return  # held by a running maintenance operation
        if prediction_expired(self._next_activity(d), now):
            self._refresh_prediction(d, now)
        next_activity = self._next_activity(d)
        decision = decide_on_idle(
            now, bool(s.old[d]), next_activity, self.config.logical_pause_s
        )
        if decision is IdleDecision.PHYSICAL_PAUSE:
            if not s.holds_slot[d]:
                # Initial settling: never held a slot; record state only.
                s.phase[d] = PH_PHYSICAL
                self.meta.record_physical_pause(d, next_activity.start)
            else:
                self._enter_physical_pause(
                    d, now, LifecycleTransition.IDLE_TO_PHYSICAL,
                    next_activity.start,
                )
        else:
            if not s.holds_slot[d]:
                self._acquire_slot(d)
            self._apply(d, LifecycleTransition.IDLE_TO_LOGICAL, now)
            self.meta.set_state(d, PH_LOGICAL)
            self.acct.record_workflow(d, now, "logical_pause")
            s.pause_start[d] = now
            s.pause_origin[d] = ORIGIN_NONE
            self._schedule_wake(
                d,
                logical_pause_wake_time(
                    now,
                    now,
                    bool(s.old[d]),
                    next_activity,
                    self.config.logical_pause_s,
                ),
            )

    def _on_wake_proactive(self, d: int, now: int) -> None:
        """Port of ``ProactiveActor._on_wake``."""
        s = self.s
        s.wake_at[d] = NONE_TS
        if s.phase[d] != PH_LOGICAL:
            return  # stale timer
        if self._maintenance_hold(d, now):
            return
        if self._close_maintenance_pause(d, now):
            self._enter_physical_pause(
                d,
                now,
                LifecycleTransition.LOGICAL_TO_PHYSICAL,
                int(s.pred_start[d]),
            )
            s.idle_since[d] = NONE_TS
            return
        if s.idle_since[d] != NONE_TS:
            pause_start = int(s.idle_since[d])
        elif s.pause_start[d] != NONE_TS:
            pause_start = int(s.pause_start[d])
        else:
            pause_start = now
        self._refresh_prediction(d, now)
        next_activity = self._next_activity(d)
        decision = decide_after_logical_pause(
            now,
            pause_start,
            bool(s.old[d]),
            next_activity,
            self.config.logical_pause_s,
        )
        if decision is IdleDecision.PHYSICAL_PAUSE:
            self._settle_idle_interval(d, now, resumed_by_login=False)
            self._enter_physical_pause(
                d, now, LifecycleTransition.LOGICAL_TO_PHYSICAL,
                next_activity.start,
            )
        else:
            self._schedule_wake(
                d,
                logical_pause_wake_time(
                    now,
                    pause_start,
                    bool(s.old[d]),
                    next_activity,
                    self.config.logical_pause_s,
                ),
            )

    def prewarm(self, d: int, now: int) -> None:
        """Port of ``ProactiveActor.prewarm`` (Algorithm 5 line 8)."""
        s = self.s
        if s.phase[d] != PH_PHYSICAL:
            return  # raced with a reactive resume in the same tick
        self._acquire_slot(d)
        self._apply(d, LifecycleTransition.PROACTIVE_RESUME, now)
        self.meta.set_state(d, PH_LOGICAL)
        self.acct.record_workflow(d, now, "proactive_resume")
        s.pause_start[d] = now
        s.pause_origin[d] = ORIGIN_PREWARM
        self._schedule_wake(
            d,
            logical_pause_wake_time(
                now,
                now,
                bool(s.old[d]),
                self._next_activity(d),
                self.config.logical_pause_s,
            ),
        )

    def _handle_idle(self, d: int, now: int) -> None:
        if self.proactive:
            self._handle_idle_proactive(d, now)
        else:
            self._handle_idle_reactive(d, now)

    # -- run loop ----------------------------------------------------------

    def schedule_resume_op(self, at: int) -> None:
        self._push(at, EV_RESUME_OP, -1)

    def _dispatch(self, kind: int, d: int, now: int) -> None:
        if kind == EV_SESSION_START:
            self._on_session_start(d, now)
        elif kind == EV_SESSION_END:
            self._on_session_end(d, now)
        elif kind == EV_RESUME_COMPLETE:
            self._on_resume_complete(d, now)
        elif kind == EV_WAKE:
            if self.proactive:
                self._on_wake_proactive(d, now)
            else:
                self._on_wake_reactive(d, now)
        elif kind == EV_MAINTENANCE:
            self._on_maintenance_start(d, now)
        else:  # EV_RESUME_OP
            assert self.on_resume_op is not None
            self.on_resume_op(now)

    def run_until(self, end: int) -> int:
        """Mirror of ``EventQueue.run_until`` including its observability
        spans/counters; stale wakes are skipped like cancelled timers."""
        executed = 0
        run_start = self._now
        heap = self._heap
        wake_epoch = self.s.wake_epoch
        obs_enabled = OBS.enabled
        monitor = OBS.slo if obs_enabled else None
        # Armed monitors cost one local float comparison per event; the
        # method call happens only when the clock crosses a boundary.
        next_eval = (
            monitor.next_boundary if monitor is not None else float("inf")
        )
        while heap and heap[0][0] <= end:
            time, _, kind, d, epoch = heapq.heappop(heap)
            if kind == EV_WAKE and epoch != wake_epoch[d]:
                continue  # cancelled wake: skipped, not dispatched
            self._now = time
            if obs_enabled:
                with OBS.tracer.span("engine.event", t=time):
                    self._dispatch(kind, d, time)
                OBS.metrics.counter("engine.events_dispatched").inc()
                if time >= next_eval:
                    monitor.maybe_evaluate(time)
                    next_eval = monitor.next_boundary
            else:
                self._dispatch(kind, d, time)
            executed += 1
        self._now = max(self._now, end)
        if obs_enabled and self._now > run_start:
            OBS.metrics.gauge("engine.sim_time").set(self._now)
            OBS.metrics.gauge("engine.events_per_sim_second").set(
                executed / (self._now - run_start)
            )
        self.events_dispatched += executed
        return executed


class ActorView:
    """Read-only per-database view over the columnar state.

    Preserves the actor API surface (lifecycle state, slot, prediction,
    outcome, history) for tests, observability tooling, and debugging --
    the "thin view" the refactor keeps in place of the actor objects.
    """

    __slots__ = ("_engine", "_d")

    def __init__(self, engine: ColumnarRegionEngine, d: int):
        self._engine = engine
        self._d = d

    @property
    def database_id(self) -> str:
        return self._engine._db_label(self._d)

    @property
    def lifecycle_state(self) -> LifecycleState:
        return STATE_FROM_CODE[self._engine.s.phase[self._d]]

    @property
    def holds_slot(self) -> bool:
        return bool(self._engine.s.holds_slot[self._d])

    @property
    def old(self) -> bool:
        return bool(self._engine.s.old[self._d])

    @property
    def next_activity(self) -> PredictedActivity:
        return self._engine._next_activity(self._d)

    @property
    def outcome(self) -> Optional[DatabaseOutcome]:
        outcomes = getattr(self._engine.acct, "outcomes", None)
        return outcomes[self._d] if outcomes is not None else None

    @property
    def history(self) -> Optional[HistoryStore]:
        stores = getattr(self._engine.hist, "stores", None)
        return stores[self._d] if stores is not None else None

    def __repr__(self) -> str:
        return (
            f"ActorView({self.database_id!r}, {self.lifecycle_state.value}, "
            f"holds_slot={self.holds_slot})"
        )


def actor_views(engine: ColumnarRegionEngine) -> List[ActorView]:
    return [ActorView(engine, d) for d in range(engine.s.n)]


# ---------------------------------------------------------------------------
# Full-mode region driver (byte-identical to region._simulate_region)
# ---------------------------------------------------------------------------


def _build_bank(settings, config: ProRPConfig, proactive: bool):
    """The region's shared PredictorBank, or None when disabled."""
    if not settings.predictor_bank or not proactive:
        return None
    from repro.tuning.bank import PredictorBank

    return PredictorBank(settings.predictor_bank, config)


def simulate_region_columnar(
    traces: Sequence[ActivityTrace],
    policy,
    config: ProRPConfig,
    settings,
):
    """Run one region on the columnar engine with the real stores.

    Mirrors ``region._simulate_region`` step for step (cluster and RNG
    construction, per-trace setup order, settle-phase seeding, start
    order, resume-operation scheduling) and returns the same
    :class:`~repro.simulation.region.RegionSimulationResult`.
    """
    import random as _random

    from repro.core.policy import PolicyKind
    from repro.core.resume_service import ProactiveResumeOperation
    from repro.simulation.region import RegionSimulationResult, _warm_history
    from repro.workload.archetypes import maintenance_sessions

    proactive = policy is PolicyKind.PROACTIVE
    cluster = Cluster(
        n_nodes=settings.n_nodes,
        node_capacity=settings.node_capacity,
        resume_latency_s=settings.resume_latency_s,
        resume_latency_jitter_s=settings.resume_latency_jitter_s,
        move_latency_s=settings.move_latency_s,
        seed=settings.seed,
    )
    metadata = MetadataStore()
    fast_predictor = (
        FastPredictor(config)
        if proactive
        and settings.use_fast_predictor
        and not settings.measure_prediction_latency
        else None
    )
    breaker = (
        CircuitBreaker(failure_threshold=5, recovery_s=900, name="predictor")
        if FAULTS.enabled and proactive
        else None
    )
    stream = None
    if OBS.enabled and OBS.metrics is not None:
        from repro.observability.slo import KpiStream

        stream = KpiStream(
            OBS.metrics,
            settings.eval_start,
            settings.eval_end,
            window_s=settings.slo_window_s,
            labels=(
                {"region": settings.region_label}
                if settings.region_label
                else None
            ),
        )

    ids = [trace.database_id for trace in traces]
    outcomes: List[DatabaseOutcome] = []
    stores: List[HistoryStore] = []
    caches: List[Optional[PredictionCache]] = []
    maintenance_lists: List[List[Session]] = []
    for trace in traces:
        outcomes.append(
            DatabaseOutcome(
                trace.database_id,
                settings.eval_start,
                settings.eval_end,
                collect_timeline=settings.collect_timelines,
            )
        )
        maintenance: List[Session] = []
        if settings.maintenance_per_week > 0:
            maintenance = maintenance_sessions(
                settings.sim_start,
                settings.eval_end,
                _random.Random(f"{settings.seed}:maint:{trace.database_id}"),
                per_week=settings.maintenance_per_week,
            )
        maintenance_lists.append(maintenance)
        if proactive:
            stores.append(
                _warm_history(trace, settings.sim_start, config.history_days)
            )
            caches.append(
                PredictionCache()
                if fast_predictor is not None and settings.use_prediction_cache
                else None
            )
        else:
            caches.append(None)

    sess_offsets, sess_starts, sess_ends = sessions_to_csr(
        [trace.sessions for trace in traces]
    )
    maint_offsets, maint_starts, maint_ends = sessions_to_csr(maintenance_lists)
    created_at = np.fromiter(
        (trace.created_at for trace in traces), dtype=np.int64, count=len(traces)
    )
    state = ColumnarState(
        len(traces),
        sess_offsets,
        sess_starts,
        sess_ends,
        maint_offsets,
        maint_starts,
        maint_ends,
        created_at,
    )
    engine = ColumnarRegionEngine(
        state,
        proactive=proactive,
        config=config,
        sim_start=settings.sim_start,
        sim_end=settings.eval_end,
        acct=StoreAccounting(outcomes, stream=stream),
        hist=StoreHistory(stores) if proactive else NullHistory(),
        meta=StoreMetadata(metadata, ids),
        cluster=StoreCluster(cluster, ids),
        fast_predictor=fast_predictor,
        caches=caches,
        breaker=breaker,
        prorp_outages=settings.prorp_outages,
        collect_predictions=settings.collect_predictions,
        bank=_build_bank(settings, config, proactive),
    )

    if fast_predictor is not None and settings.use_prediction_cache:
        engine.seed_initial_predictions()

    for d in range(state.n):
        engine.start(d)

    resume_operation: Optional[ProactiveResumeOperation] = None
    if proactive:
        index_of = {database_id: d for d, database_id in enumerate(ids)}
        resume_operation = ProactiveResumeOperation(
            metadata,
            prewarm_s=config.prewarm_s,
            period_s=config.resume_operation_period_s,
            on_prewarm=lambda db_id, now: engine.prewarm(index_of[db_id], now),
            retain_iterations=settings.resume_iteration_retention,
        )

        def run_resume_operation(now: int) -> None:
            if not any(
                start <= now < end for start, end in settings.prorp_outages
            ):
                resume_operation.run_once(now)
            nxt = now + config.resume_operation_period_s
            if nxt < settings.eval_end:
                engine.schedule_resume_op(nxt)

        engine.on_resume_op = run_resume_operation
        engine.schedule_resume_op(
            settings.sim_start + config.resume_operation_period_s
        )

    engine.run_until(settings.eval_end)
    for d in range(state.n):
        engine.finalize(d, settings.eval_end)

    return RegionSimulationResult(
        policy=policy.value,
        settings=settings,
        config=config,
        outcomes=outcomes,
        resume_iterations=(
            resume_operation.iterations if resume_operation else []
        ),
        histories={ids[d]: stores[d] for d in range(len(stores))},
        cluster_moves=cluster.moves,
    )
