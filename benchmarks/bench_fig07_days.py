"""Figure 7 bench: KPI validation across four consecutive evaluation days.

Paper shape: the reactive/proactive gap is stable day over day.
"""

from repro.experiments.common import BENCH_SCALE
from repro.experiments.fig7 import run_fig7


def bench_fig7_days(benchmark, record_table):
    result = benchmark.pedantic(
        run_fig7, args=(BENCH_SCALE,), rounds=1, iterations=1
    )
    record_table("fig07_days", result.table())
    for row in result.rows():
        assert row["proactive_qos_percent"] > row["reactive_qos_percent"]
