"""``observe --top``: a terminal dashboard over the live registry.

Renders the windowed SLO series as unicode sparklines with their latest
values, the firing alerts from the ledger, and the headline cumulative
counters -- the ``top(1)`` view an operator keeps open next to a fleet.
Pure string formatting; no terminal control codes, so the output is
pipe- and test-friendly.
"""

from __future__ import annotations

from typing import List, Optional

from repro.observability.metrics import MetricsRegistry
from repro.observability.slo import AlertLedger

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: List[float], width: int = 32) -> str:
    """Scale ``values`` onto 8-level unicode blocks (newest right)."""
    if not values:
        return ""
    tail = values[-width:]
    peak = max(tail)
    if peak <= 0:
        return _BLOCKS[0] * len(tail)
    return "".join(
        _BLOCKS[min(8, int(8 * v / peak + 0.999)) if v > 0 else 0]
        for v in tail
    )


def _fmt_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if value >= 1000:
        return f"{value:,.0f}"
    return f"{value:.6g}"


def render_top(
    registry: Optional[MetricsRegistry],
    ledger: Optional[AlertLedger] = None,
    title: str = "observe top",
    width: int = 32,
) -> str:
    """The dashboard as one multi-line string."""
    lines = [f"== {title} =="]
    if registry is None:
        lines.append("(observability disabled)")
        return "\n".join(lines)

    if ledger is not None:
        active = ledger.active()
        if active:
            lines.append(f"-- alerts: {len(active)} FIRING --")
            for event in active:
                lines.append(
                    f"  !! {event.name} [{event.severity}] since "
                    f"t={_fmt_value(event.time)}  {event.detail}"
                )
        else:
            lines.append(
                f"-- alerts: none firing "
                f"({ledger.fired_count()} fired / "
                f"{ledger.cleared_count()} cleared this run) --"
            )

    series_rows = []
    gauge_rows = []
    counter_rows = []
    for key, metric in registry.items():
        kind = metric.kind
        if kind == "counter_series":
            values = [float(v) for _, v in metric.window_items()]
            series_rows.append(
                f"  {key:<44} {sparkline(values, width):<{width}} "
                f"total={_fmt_value(metric.total())}"
            )
        elif kind == "histogram_series":
            values = [float(w.count) for _, w in sorted(metric.windows.items())]
            worst = metric.worst_exemplar()
            suffix = f" worst={_fmt_value(worst[0])} ({worst[1]})" if worst else ""
            series_rows.append(
                f"  {key:<44} {sparkline(values, width):<{width}} "
                f"count={_fmt_value(metric.total_count())}{suffix}"
            )
        elif kind == "gauge_series":
            values = [
                float(v) for _, v in metric.window_items() if v is not None
            ]
            last = metric.last
            series_rows.append(
                f"  {key:<44} {sparkline(values, width):<{width}} "
                f"last={_fmt_value(last) if last is not None else '-'}"
            )
        elif kind == "gauge":
            if metric.value is not None and key.startswith("slo."):
                gauge_rows.append(f"  {key:<44} {_fmt_value(metric.value)}")
        elif kind == "counter":
            if metric.value:
                counter_rows.append(f"  {key:<44} {_fmt_value(metric.value)}")

    if series_rows:
        lines.append(f"-- windowed series ({len(series_rows)}) --")
        lines.extend(series_rows)
    if gauge_rows:
        lines.append("-- slo state --")
        lines.extend(gauge_rows)
    if counter_rows:
        lines.append(f"-- counters ({len(counter_rows)}) --")
        lines.extend(counter_rows)
    if len(lines) == 1:
        lines.append("(registry is empty)")
    return "\n".join(lines)
