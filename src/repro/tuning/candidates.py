"""Knob-candidate generation and the shared validation helper.

Section 8 of the paper tunes ``l`` (logical pause), ``c`` (confidence)
and ``w`` (window size) with an offline monthly grid sweep.  The online
tuner replaces that sweep with a small *population* of candidate configs
evaluated live; this module builds and validates that population.

``validate_knob_candidates`` is the one validation path shared by the
``tune`` CLI sweep (:mod:`repro.training.knob_selection`) and the
``tune-online`` driver: an unknown knob name or a value the config
rejects fails *at configuration time* with a typed
:class:`~repro.errors.ConfigError`, instead of being silently skipped
deep inside the sweep.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Mapping, Sequence

from repro.config import ProRPConfig
from repro.errors import ConfigError

#: The knobs the online tuner varies (Table 1's ``l``, ``c``, ``w``).
TUNABLE_KNOBS = ("logical_pause_s", "confidence", "window_s")

_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(ProRPConfig))


def validate_knob_candidates(
    base: ProRPConfig, candidates: Mapping[str, Sequence[Any]]
) -> None:
    """Fail fast on any invalid knob name or candidate value.

    Each value is applied to ``base`` *in isolation* (one knob at a
    time), exactly the way ``rank_knobs`` evaluates them, so a value
    that can never produce a valid config raises :class:`ConfigError`
    here instead of vanishing from the sweep.
    """
    for knob in candidates:
        if knob not in _CONFIG_FIELDS:
            raise ConfigError(
                f"unknown knob {knob!r}: not a ProRPConfig field "
                f"(tunable knobs include {', '.join(TUNABLE_KNOBS)})"
            )
        values = candidates[knob]
        if not values:
            raise ConfigError(f"knob {knob!r} has no candidate values")
        for value in values:
            try:
                base.with_overrides(**{knob: value})
            except ConfigError as exc:
                raise ConfigError(
                    f"invalid candidate for knob {knob!r}: {value!r} ({exc})"
                ) from exc


def candidate_population(
    base: ProRPConfig, candidates: Mapping[str, Sequence[Any]]
) -> List[ProRPConfig]:
    """The challenger population: one knob varied at a time around ``base``.

    Unlike the offline sweep's full cross product, the online tuner keeps
    the population small (Section 8's grid would be ~|l|x|c|x|w| live
    simulations per window).  Candidates equal to ``base`` are dropped,
    duplicates collapse, and order is deterministic: knobs in the order
    given, values in their listed order.
    """
    validate_knob_candidates(base, candidates)
    population: List[ProRPConfig] = []
    seen = {base}
    for knob in candidates:
        for value in candidates[knob]:
            config = base.with_overrides(**{knob: value})
            if config in seen:
                continue
            seen.add(config)
            population.append(config)
    return population


def default_candidates(base: ProRPConfig) -> Dict[str, Sequence[Any]]:
    """A conservative default (l, c, w) population around ``base``.

    Halved/doubled pause horizon, a tighter and a looser confidence
    threshold, and a narrower/wider detection window -- six challengers,
    all guaranteed valid for the given base config.
    """
    spread: Dict[str, Sequence[Any]] = {
        "logical_pause_s": [
            max(1, base.logical_pause_s // 2),
            base.logical_pause_s * 2,
        ],
        "confidence": [
            max(0.01, round(base.confidence / 2, 6)),
            min(1.0, round(base.confidence * 3, 6)),
        ],
        "window_s": [
            max(base.slide_s, base.window_s // 2),
            min(base.horizon_s, base.window_s * 2),
        ],
    }
    validate_knob_candidates(base, spread)
    return spread
