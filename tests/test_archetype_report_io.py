"""Tests for the per-archetype KPI breakdown and trace import/export."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.archetype_report import (
    archetype_breakdown,
    archetype_of,
    format_breakdown,
)
from repro.errors import TraceError
from repro.simulation import SimulationSettings, simulate_region
from repro.types import SECONDS_PER_DAY, ActivityTrace, Session
from repro.workload import RegionPreset, generate_region_traces
from repro.workload.io import export_traces, import_traces, trace_from_dict

DAY = SECONDS_PER_DAY


class TestArchetypeParsing:
    def test_standard_ids(self):
        assert archetype_of("eu1-daily-00042") == "daily"
        assert archetype_of("us2-bursty_dev-00001") == "bursty_dev"

    def test_foreign_ids(self):
        assert archetype_of("mydb") == "other"
        assert archetype_of("a-b") == "other"


class TestBreakdown:
    @pytest.fixture(scope="class")
    def result(self):
        traces = generate_region_traces(RegionPreset.EU1, 150, span_days=32, seed=4)
        settings = SimulationSettings(eval_start=30 * DAY, eval_end=31 * DAY)
        return simulate_region(traces, "proactive", settings=settings)

    def test_groups_cover_fleet(self, result):
        breakdown = archetype_breakdown(result.outcomes)
        assert sum(entry.databases for entry in breakdown) == len(result.outcomes)
        names = {entry.archetype for entry in breakdown}
        assert {"daily", "sporadic", "dormant"} <= names

    def test_predictable_archetypes_beat_unpredictable(self, result):
        """The drill-down shows *why* the fleet KPI lands where it does:
        daily patterns get pre-warmed, dormant ones stay reactive."""
        breakdown = {e.archetype: e for e in archetype_breakdown(result.outcomes)}
        assert breakdown["daily"].qos_percent > breakdown["dormant"].qos_percent

    def test_login_totals_match_fleet_kpis(self, result):
        breakdown = archetype_breakdown(result.outcomes)
        kpis = result.kpis()
        assert sum(e.logins for e in breakdown) == kpis.logins.total
        assert sum(e.logins_served for e in breakdown) == kpis.logins.with_resources

    def test_format(self, result):
        text = format_breakdown(
            archetype_breakdown(result.outcomes), title="EU1 proactive"
        )
        assert "archetype" in text and "daily" in text


class TestTraceIo:
    def test_round_trip(self, tmp_path):
        traces = generate_region_traces(RegionPreset.EU2, 25, span_days=10, seed=2)
        path = tmp_path / "fleet.jsonl"
        assert export_traces(traces, path) == 25
        loaded = import_traces(path)
        assert len(loaded) == 25
        for original, restored in zip(traces, loaded):
            assert restored.database_id == original.database_id
            assert restored.created_at == original.created_at
            assert restored.sessions == original.sessions

    def test_imported_fleet_simulates_identically(self, tmp_path):
        traces = generate_region_traces(RegionPreset.EU2, 30, span_days=32, seed=2)
        path = tmp_path / "fleet.jsonl"
        export_traces(traces, path)
        loaded = import_traces(path)
        settings = SimulationSettings(eval_start=30 * DAY, eval_end=31 * DAY)
        a = simulate_region(traces, "proactive", settings=settings).kpis()
        b = simulate_region(loaded, "proactive", settings=settings).kpis()
        assert a.to_dict() == b.to_dict()

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"database_id": "x", "sessions": [[0, 10]]}\nnot json\n')
        with pytest.raises(TraceError) as exc:
            import_traces(path)
        assert ":2:" in str(exc.value)

    def test_malformed_record_rejected(self):
        with pytest.raises(TraceError):
            trace_from_dict({"sessions": [[0, 10]]})
        with pytest.raises(TraceError):
            trace_from_dict({"database_id": "x", "sessions": [[10]]})

    def test_overlapping_sessions_rejected(self, tmp_path):
        path = tmp_path / "overlap.jsonl"
        path.write_text(
            '{"database_id": "x", "created_at": 0, "sessions": [[0, 10], [5, 15]]}\n'
        )
        with pytest.raises(TraceError):
            import_traces(path)

    def test_duplicate_ids_rejected(self, tmp_path):
        path = tmp_path / "dupe.jsonl"
        line = '{"database_id": "x", "created_at": 0, "sessions": [[0, 10]]}\n'
        path.write_text(line + line)
        with pytest.raises(TraceError):
            import_traces(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_text(
            '\n{"database_id": "x", "created_at": 0, "sessions": [[0, 10]]}\n\n'
        )
        assert len(import_traces(path)) == 1

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=1, max_value=500),
            ),
            max_size=15,
        )
    )
    def test_fuzz_round_trip(self, raw):
        from repro.types import merge_sessions
        from repro.workload.io import trace_to_dict

        sessions = merge_sessions(Session(s, s + d) for s, d in raw)
        trace = ActivityTrace("fuzz", sessions)
        restored = trace_from_dict(trace_to_dict(trace))
        assert restored.sessions == trace.sessions
        assert restored.created_at == trace.created_at
