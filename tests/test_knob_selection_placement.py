"""Tests for automated knob selection (Section 11(2)) and the
prediction-aware placement advisor (Section 11(3))."""

import pytest

from repro.cluster import Cluster
from repro.cluster.placement import PlacementAdvisor
from repro.config import ProRPConfig
from repro.errors import CapacityError, ConfigError
from repro.simulation import SimulationSettings
from repro.training import TrainingPipeline
from repro.training.knob_selection import rank_knobs, select_knobs
from repro.types import SECONDS_PER_DAY, SECONDS_PER_HOUR, SECONDS_PER_MINUTE
from repro.workload import RegionPreset, generate_region_traces

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR
MIN = SECONDS_PER_MINUTE


class TestKnobSelection:
    @pytest.fixture(scope="class")
    def pipeline(self):
        traces = generate_region_traces(RegionPreset.EU1, 60, span_days=31, seed=6)
        settings = SimulationSettings(eval_start=29 * DAY, eval_end=30 * DAY)
        return TrainingPipeline(traces, settings)

    def test_confidence_more_impactful_than_prewarm(self, pipeline):
        """The paper manually picked window/confidence as the impactful
        knobs; the sensitivity analysis agrees that confidence dominates
        the pre-warm interval."""
        impacts = rank_knobs(
            pipeline,
            ProRPConfig(),
            {
                "confidence": [0.1, 0.8],
                "prewarm_s": [1 * MIN, 10 * MIN],
            },
        )
        assert impacts[0].knob == "confidence"
        assert impacts[0].impact > impacts[1].impact

    def test_select_knobs_returns_top_k(self, pipeline):
        knobs = select_knobs(
            pipeline,
            ProRPConfig(),
            {"confidence": [0.1, 0.8], "prewarm_s": [1 * MIN, 10 * MIN]},
            top_k=1,
        )
        assert knobs == ["confidence"]

    def test_invalid_value_rejected_up_front(self, pipeline):
        """An invalid probe value is a configuration error, not a silent
        shrink of the sweep (shared validation with the online tuner)."""
        with pytest.raises(ConfigError, match="invalid candidate"):
            rank_knobs(pipeline, ProRPConfig(), {"confidence": [0.1, -1.0]})

    def test_unknown_knob_rejected(self, pipeline):
        with pytest.raises(ConfigError, match="unknown knob"):
            rank_knobs(pipeline, ProRPConfig(), {"confidnce": [0.1]})

    def test_all_invalid_rejected(self, pipeline):
        with pytest.raises(ConfigError):
            rank_knobs(pipeline, ProRPConfig(), {"confidence": [-1.0]})

    def test_bad_top_k(self, pipeline):
        with pytest.raises(ConfigError):
            select_knobs(pipeline, ProRPConfig(), {"confidence": [0.1]}, top_k=0)


class TestPlacementAdvisor:
    def _advisor(self, n_nodes=3):
        cluster = Cluster(n_nodes=n_nodes, node_capacity=16)
        return cluster, PlacementAdvisor(cluster)

    def test_spreads_correlated_predictions(self):
        """Databases predicted to resume at the same minute land on
        different nodes (flattening the Figure 11 batch per node)."""
        cluster, advisor = self._advisor(n_nodes=3)
        pred_start = 9 * HOUR
        nodes = [advisor.place(f"db-{i}", pred_start) for i in range(3)]
        assert len({node.node_id for node in nodes}) == 3

    def test_anti_correlated_predictions_can_share(self):
        cluster, advisor = self._advisor(n_nodes=2)
        advisor.place("morning", 9 * HOUR)
        node = advisor.suggest_node(21 * HOUR)
        # A 21:00 database adds no pressure anywhere: ties break by
        # resident count, so it avoids the occupied node -- but its own
        # 09:00-pressure contribution is zero on both.
        assert advisor.node_pressure(node.node_id, 21 * HOUR) == 0

    def test_pressure_window(self):
        cluster, advisor = self._advisor()
        advisor.place("a", 9 * HOUR)
        node = cluster.node_of("a")
        assert advisor.node_pressure(node.node_id, 9 * HOUR) == 1
        assert advisor.node_pressure(node.node_id, 9 * HOUR + 5 * MIN) == 1
        assert advisor.node_pressure(node.node_id, 15 * HOUR) == 0

    def test_no_prediction_contributes_nothing(self):
        cluster, advisor = self._advisor()
        advisor.place("a", 0)  # sentinel: no prediction
        for node in cluster.nodes:
            assert advisor.peak_pressure(node.node_id) == 0

    def test_clear_prediction(self):
        cluster, advisor = self._advisor()
        node = advisor.place("a", 9 * HOUR)
        advisor.clear_prediction("a")
        assert advisor.node_pressure(node.node_id, 9 * HOUR) == 0

    def test_record_updates_replace(self):
        cluster, advisor = self._advisor()
        node = advisor.place("a", 9 * HOUR)
        advisor.record_prediction("a", node.node_id, 14 * HOUR)
        assert advisor.node_pressure(node.node_id, 9 * HOUR) == 0
        assert advisor.node_pressure(node.node_id, 14 * HOUR) == 1

    def test_peak_pressure(self):
        cluster, advisor = self._advisor(n_nodes=1)
        for i in range(4):
            advisor.place(f"db-{i}", 9 * HOUR + i)  # same bucket
        assert advisor.peak_pressure("node-000") == 4

    def test_bad_bucket_rejected(self):
        cluster = Cluster(n_nodes=1)
        with pytest.raises(CapacityError):
            PlacementAdvisor(cluster, bucket_s=0)
