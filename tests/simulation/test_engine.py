"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given
from hypothesis import settings as hsettings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulation.engine import EventQueue


class TestEventQueue:
    def test_events_run_in_time_order(self):
        queue = EventQueue()
        log = []
        queue.schedule(30, lambda t: log.append(("c", t)))
        queue.schedule(10, lambda t: log.append(("a", t)))
        queue.schedule(20, lambda t: log.append(("b", t)))
        queue.run_until(100)
        assert log == [("a", 10), ("b", 20), ("c", 30)]

    def test_same_time_insertion_order(self):
        queue = EventQueue()
        log = []
        for name in "abc":
            queue.schedule(5, lambda t, n=name: log.append(n))
        queue.run_until(5)
        assert log == ["a", "b", "c"]

    def test_run_until_boundary_inclusive(self):
        queue = EventQueue()
        log = []
        queue.schedule(10, lambda t: log.append(t))
        queue.schedule(11, lambda t: log.append(t))
        executed = queue.run_until(10)
        assert executed == 1 and log == [10]
        assert queue.now == 10
        queue.run_until(20)
        assert log == [10, 11]
        assert queue.now == 20

    def test_cancel_prevents_execution(self):
        queue = EventQueue()
        log = []
        timer = queue.schedule(10, lambda t: log.append("x"))
        timer.cancel()
        queue.run_until(20)
        assert log == []
        assert len(queue) == 0

    def test_scheduling_in_the_past_rejected(self):
        queue = EventQueue()
        queue.schedule(10, lambda t: queue.run_until)
        queue.run_until(10)
        with pytest.raises(SimulationError):
            queue.schedule(5, lambda t: None)

    def test_events_scheduled_during_run(self):
        queue = EventQueue()
        log = []

        def chain(t):
            log.append(t)
            if t < 30:
                queue.schedule(t + 10, chain)

        queue.schedule(10, chain)
        queue.run_until(100)
        assert log == [10, 20, 30]

    def test_schedule_after(self):
        queue = EventQueue(start=100)
        log = []
        queue.schedule_after(5, lambda t: log.append(t))
        queue.run_until(200)
        assert log == [105]

    def test_run_all(self):
        queue = EventQueue()
        log = []
        queue.schedule(10, lambda t: log.append(t))
        queue.schedule(1000, lambda t: log.append(t))
        assert queue.run_all() == 2
        assert log == [10, 1000]

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        queue.schedule(10, lambda t: None)
        gone = queue.schedule(20, lambda t: None)
        gone.cancel()
        assert len(queue) == 1

    def test_len_tracks_live_entries_without_scanning(self):
        # Regression: __len__ is a live counter, not an O(n) heap scan.
        # Exercise every path that moves the count: schedule, cancel,
        # double-cancel, execution, and cancel-after-execution.
        queue = EventQueue()
        timers = [queue.schedule(10 * i, lambda t: None) for i in range(6)]
        assert len(queue) == 6
        timers[0].cancel()
        timers[0].cancel()  # double cancel must not decrement twice
        timers[1].cancel()
        assert len(queue) == 4
        queue.run_until(20)  # executes t=20 (t=0, t=10 were cancelled)
        assert len(queue) == 3
        timers[2].cancel()  # already executed: must not decrement
        assert len(queue) == 3
        queue.run_all()
        assert len(queue) == 0

    def test_cancel_of_popped_timer_never_undercounts(self):
        # Regression: once an entry is popped for execution it has already
        # left the live count; cancelling its timer at that point (e.g. an
        # actor cancelling its own wake-up from inside the wake-up action)
        # must not decrement again, or len() would drop below the true
        # number of live entries.
        queue = EventQueue()
        holder = {}
        other = queue.schedule(20, lambda t: None)

        def self_cancel(t):
            holder["timer"].cancel()  # popped: must not touch the count
            holder["timer"].cancel()  # nor on a double cancel
            assert len(queue) == 1  # only `other` is live

        holder["timer"] = queue.schedule(10, self_cancel)
        assert len(queue) == 2
        queue.run_until(15)
        assert len(queue) == 1
        other.cancel()
        assert len(queue) == 0

    def test_len_counts_events_scheduled_during_run(self):
        queue = EventQueue()
        queue.schedule(5, lambda t: queue.schedule(15, lambda t2: None))
        queue.run_until(10)
        assert len(queue) == 1
        queue.run_all()
        assert len(queue) == 0


# ---------------------------------------------------------------------------
# Property-based: the queue matches a sorted-event model
# ---------------------------------------------------------------------------


@hsettings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1000),  # fire time
            st.booleans(),  # cancelled?
        ),
        max_size=40,
    )
)
def test_queue_matches_sorted_model(entries):
    queue = EventQueue()
    fired = []
    expected = []
    for i, (time, cancelled) in enumerate(entries):
        timer = queue.schedule(time, lambda t, i=i: fired.append((t, i)))
        if cancelled:
            timer.cancel()
        else:
            expected.append((time, i))
    assert len(queue) == len(expected)
    queue.run_all()
    assert len(queue) == 0
    # Stable order: by time, ties by insertion sequence.
    expected.sort(key=lambda pair: (pair[0], pair[1]))
    assert fired == expected
