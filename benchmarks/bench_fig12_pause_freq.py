"""Figure 12 bench: physical-pause workflow frequency.

Paper shape: pause volume per interval grows with the interval (max 31 ->
458 at production scale) and sits slightly above the Figure 11 pre-warm
volume because new databases pause without ever being predicted.
"""

from repro.experiments.common import BENCH_SCALE
from repro.experiments.fig12 import run_fig12


def bench_fig12_pause_frequency(benchmark, record_table):
    result = benchmark.pedantic(
        run_fig12, args=(BENCH_SCALE,), rounds=1, iterations=1
    )
    record_table("fig12_pause_freq", result.table())
    rows = result.rows()
    assert rows[-1]["proactive_max"] >= rows[0]["proactive_max"]
    assert rows[0]["pauses_total"] >= rows[0]["prewarm_total"]
