"""Tests for typed schemas and tables with clustered/secondary indexes."""

import pytest

from repro.errors import DuplicateKeyError, SchemaError, StorageError
from repro.storage.schema import (
    Column,
    ColumnType,
    TableSchema,
    history_schema,
    metadata_schema,
)
from repro.storage.table import Table


def users_schema():
    return TableSchema(
        name="users",
        columns=(
            Column("id", ColumnType.BIGINT, nullable=False),
            Column("name", ColumnType.TEXT, nullable=False),
            Column("score", ColumnType.FLOAT),
        ),
        primary_key="id",
    )


class TestColumnType:
    def test_bigint_accepts_int(self):
        assert ColumnType.BIGINT.validate(42) == 42

    def test_bigint_rejects_bool(self):
        with pytest.raises(SchemaError):
            ColumnType.BIGINT.validate(True)

    def test_bigint_rejects_str(self):
        with pytest.raises(SchemaError):
            ColumnType.BIGINT.validate("42")

    def test_float_coerces_int(self):
        value = ColumnType.FLOAT.validate(3)
        assert value == 3.0 and isinstance(value, float)

    def test_text_rejects_int(self):
        with pytest.raises(SchemaError):
            ColumnType.TEXT.validate(1)

    def test_none_passes_through(self):
        assert ColumnType.INT.validate(None) is None


class TestTableSchema:
    def test_duplicate_column_names_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                (Column("a", ColumnType.INT), Column("a", ColumnType.INT)),
                primary_key="a",
            )

    def test_primary_key_must_be_a_column(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (Column("a", ColumnType.INT),), primary_key="b")

    def test_validate_row_defaults_missing_nullable(self):
        schema = users_schema()
        values = schema.validate_row({"id": 1, "name": "n"})
        assert values == (1, "n", None)

    def test_validate_row_rejects_unknown_column(self):
        with pytest.raises(SchemaError):
            users_schema().validate_row({"id": 1, "name": "n", "bogus": 1})

    def test_validate_row_rejects_null_pk(self):
        with pytest.raises(SchemaError):
            users_schema().validate_row({"name": "n"})

    def test_validate_row_rejects_not_null_violation(self):
        with pytest.raises(SchemaError):
            users_schema().validate_row({"id": 1})

    def test_row_round_trip(self):
        schema = users_schema()
        row = {"id": 5, "name": "x", "score": 1.5}
        assert schema.row_to_dict(schema.validate_row(row)) == row

    def test_history_schema_matches_paper(self):
        schema = history_schema()
        assert schema.name == "sys.pause_resume_history"
        assert schema.column_names == ["time_snapshot", "event_type"]
        assert schema.primary_key == "time_snapshot"

    def test_metadata_schema_primary_key(self):
        assert metadata_schema().primary_key == "database_id"


class TestTable:
    def test_insert_and_get(self):
        table = Table(users_schema())
        table.insert({"id": 1, "name": "ada", "score": 9.0})
        assert table.get(1) == {"id": 1, "name": "ada", "score": 9.0}
        assert table.get(2) is None
        assert len(table) == 1

    def test_insert_duplicate_pk(self):
        table = Table(users_schema())
        table.insert({"id": 1, "name": "a"})
        with pytest.raises(DuplicateKeyError):
            table.insert({"id": 1, "name": "b"})

    def test_insert_if_absent(self):
        table = Table(users_schema())
        assert table.insert_if_absent({"id": 1, "name": "a"}) is True
        assert table.insert_if_absent({"id": 1, "name": "b"}) is False
        assert table.get(1)["name"] == "a"

    def test_scan_in_key_order(self):
        table = Table(users_schema())
        for i in [3, 1, 2]:
            table.insert({"id": i, "name": str(i)})
        assert [r["id"] for r in table.scan()] == [1, 2, 3]

    def test_scan_with_predicate(self):
        table = Table(users_schema())
        for i in range(5):
            table.insert({"id": i, "name": "even" if i % 2 == 0 else "odd"})
        evens = list(table.scan(lambda r: r["name"] == "even"))
        assert [r["id"] for r in evens] == [0, 2, 4]

    def test_key_range(self):
        table = Table(users_schema())
        for i in range(10):
            table.insert({"id": i, "name": str(i)})
        assert [r["id"] for r in table.key_range(3, 6)] == [3, 4, 5, 6]

    def test_delete_by_key(self):
        table = Table(users_schema())
        table.insert({"id": 1, "name": "a"})
        assert table.delete_by_key(1) is True
        assert table.delete_by_key(1) is False
        assert len(table) == 0

    def test_delete_key_range_exclusive(self):
        table = Table(users_schema())
        for i in range(10):
            table.insert({"id": i, "name": str(i)})
        deleted = table.delete_key_range(2, 6, include_lo=False, include_hi=False)
        assert deleted == 3
        assert [r["id"] for r in table.scan()] == [0, 1, 2, 6, 7, 8, 9]

    def test_delete_where(self):
        table = Table(users_schema())
        for i in range(6):
            table.insert({"id": i, "name": "x" if i < 3 else "y"})
        assert table.delete_where(lambda r: r["name"] == "x") == 3
        assert len(table) == 3

    def test_update_by_key(self):
        table = Table(users_schema())
        table.insert({"id": 1, "name": "a", "score": 1.0})
        assert table.update_by_key(1, {"score": 2.0}) is True
        assert table.get(1)["score"] == 2.0
        assert table.get(1)["name"] == "a"

    def test_update_missing_key_returns_false(self):
        table = Table(users_schema())
        assert table.update_by_key(99, {"name": "x"}) is False

    def test_update_pk_rejected(self):
        table = Table(users_schema())
        table.insert({"id": 1, "name": "a"})
        with pytest.raises(StorageError):
            table.update_by_key(1, {"id": 2})

    def test_min_max_key(self):
        table = Table(users_schema())
        assert table.min_key() is None
        for i in [5, 2, 9]:
            table.insert({"id": i, "name": str(i)})
        assert table.min_key() == 2
        assert table.max_key() == 9

    def test_size_bytes_history_layout(self):
        """The paper counts 16 bytes per history tuple (two 64-bit ints)."""
        table = Table(history_schema())
        for i in range(10):
            table.insert({"time_snapshot": i, "event_type": i % 2})
        # time_snapshot is BIGINT (8) + event_type INT (4) = 12 at the
        # storage layer; HistoryStore reports the paper's 16B accounting.
        assert table.size_bytes() == 10 * 12


class TestSecondaryIndex:
    def _table(self):
        table = Table(users_schema())
        table.create_index("score")
        for i in range(10):
            table.insert({"id": i, "name": str(i), "score": float(i % 5)})
        return table

    def test_create_index_on_pk_rejected(self):
        table = Table(users_schema())
        with pytest.raises(StorageError):
            table.create_index("id")

    def test_create_duplicate_index_rejected(self):
        table = Table(users_schema())
        table.create_index("score")
        with pytest.raises(StorageError):
            table.create_index("score")

    def test_index_on_unknown_column_rejected(self):
        table = Table(users_schema())
        with pytest.raises(SchemaError):
            table.create_index("bogus")

    def test_secondary_range_lookup(self):
        table = self._table()
        rows = list(table.secondary_range("score", 2.0, 3.0))
        assert sorted(r["id"] for r in rows) == [2, 3, 7, 8]

    def test_secondary_range_unbounded(self):
        table = self._table()
        assert len(list(table.secondary_range("score"))) == 10

    def test_index_created_after_rows_exist(self):
        table = Table(users_schema())
        for i in range(5):
            table.insert({"id": i, "name": str(i), "score": float(i)})
        table.create_index("score")
        assert [r["id"] for r in table.secondary_range("score", 3.0, 4.0)] == [3, 4]

    def test_index_maintained_on_delete(self):
        table = self._table()
        table.delete_by_key(2)
        rows = list(table.secondary_range("score", 2.0, 2.0))
        assert [r["id"] for r in rows] == [7]

    def test_index_maintained_on_update(self):
        table = self._table()
        table.update_by_key(2, {"score": 4.5})
        assert [r["id"] for r in table.secondary_range("score", 2.0, 2.0)] == [7]
        assert 2 in [r["id"] for r in table.secondary_range("score", 4.5, 4.5)]

    def test_index_maintained_on_range_delete(self):
        table = self._table()
        table.delete_key_range(0, 4)
        rows = list(table.secondary_range("score", 0.0, 4.0))
        assert sorted(r["id"] for r in rows) == [5, 6, 7, 8, 9]

    def test_unindexed_secondary_range_raises(self):
        table = Table(users_schema())
        with pytest.raises(StorageError):
            list(table.secondary_range("name", "a", "b"))
