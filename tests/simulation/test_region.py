"""Region-level integration tests: fleets, KPI aggregation, and the
paper-shaped orderings between policies."""

import pytest

from repro.errors import SimulationError
from repro.simulation import SimulationSettings, simulate_region
from repro.simulation.results import bucket_event_times
from repro.types import SECONDS_PER_DAY, SECONDS_PER_MINUTE
from repro.workload import RegionPreset, generate_region_traces

DAY = SECONDS_PER_DAY
MIN = SECONDS_PER_MINUTE


@pytest.fixture(scope="module")
def fleet():
    return generate_region_traces(RegionPreset.EU1, 120, span_days=33, seed=11)


@pytest.fixture(scope="module")
def settings():
    return SimulationSettings(eval_start=30 * DAY, eval_end=32 * DAY, seed=1)


@pytest.fixture(scope="module")
def reactive_result(fleet, settings):
    return simulate_region(fleet, "reactive", settings=settings)


@pytest.fixture(scope="module")
def proactive_result(fleet, settings):
    return simulate_region(fleet, "proactive", settings=settings)


class TestAccounting:
    def test_identity_holds_for_reactive(self, reactive_result):
        kpis = reactive_result.kpis()
        assert kpis.accounted_seconds() == kpis.fleet_seconds

    def test_identity_holds_for_proactive(self, proactive_result):
        kpis = proactive_result.kpis()
        assert kpis.accounted_seconds() == kpis.fleet_seconds

    def test_all_databases_reported(self, proactive_result, fleet):
        assert proactive_result.kpis().n_databases == len(fleet)

    def test_login_totals_match_across_policies(
        self, reactive_result, proactive_result
    ):
        """Demand is policy-independent: both policies see the same logins."""
        assert (
            reactive_result.kpis().logins.total
            == proactive_result.kpis().logins.total
        )

    def test_used_time_matches_optimal_when_no_unavailability(
        self, fleet, settings, proactive_result
    ):
        """used + unavailable = total demand (= the optimal policy's used)."""
        optimal = simulate_region(fleet, "optimal", settings=settings).kpis()
        proactive = proactive_result.kpis()
        assert proactive.used_s + proactive.unavailable_s == optimal.used_s


class TestPaperShape:
    """The qualitative results of Figures 6-7 on a small fleet."""

    def test_proactive_improves_qos(self, reactive_result, proactive_result):
        reactive = reactive_result.kpis()
        proactive = proactive_result.kpis()
        assert proactive.qos_percent > reactive.qos_percent + 10

    def test_proactive_reduces_logical_pause_idle(
        self, reactive_result, proactive_result
    ):
        assert (
            proactive_result.kpis().idle_logical_pause_percent
            < reactive_result.kpis().idle_logical_pause_percent
        )

    def test_proactive_reduces_unavailability(
        self, reactive_result, proactive_result
    ):
        assert (
            proactive_result.kpis().unavailable_s
            < reactive_result.kpis().unavailable_s
        )

    def test_reactive_has_no_proactive_workflows(self, reactive_result):
        workflows = reactive_result.kpis().workflows
        assert workflows.proactive_resumes == 0
        assert workflows.correct_proactive_resumes == 0
        assert workflows.wrong_proactive_resumes == 0

    def test_proactive_resume_counts_consistent(self, proactive_result):
        """Every pre-warm resolved inside the window is classified."""
        workflows = proactive_result.kpis().workflows
        assert workflows.proactive_resumes > 0
        assert (
            workflows.correct_proactive_resumes + workflows.wrong_proactive_resumes
            <= workflows.proactive_resumes + 5  # pre-warms issued pre-window
        )

    def test_optimal_dominates_both(self, fleet, settings, proactive_result):
        optimal = simulate_region(fleet, "optimal", settings=settings).kpis()
        assert optimal.qos_percent == 100.0
        assert optimal.idle.total_s == 0


class TestDeterminism:
    def test_same_seed_same_result(self, fleet, settings):
        a = simulate_region(fleet, "proactive", settings=settings).kpis()
        b = simulate_region(fleet, "proactive", settings=settings).kpis()
        assert a.to_dict() == b.to_dict()

    def test_fast_and_reference_predictors_agree(self, fleet):
        """The vectorised predictor must not change simulation outcomes."""
        small = fleet[:25]
        settings_fast = SimulationSettings(
            eval_start=30 * DAY, eval_end=31 * DAY, use_fast_predictor=True
        )
        settings_ref = SimulationSettings(
            eval_start=30 * DAY, eval_end=31 * DAY, use_fast_predictor=False
        )
        fast = simulate_region(small, "proactive", settings=settings_fast).kpis()
        ref = simulate_region(small, "proactive", settings=settings_ref).kpis()
        assert fast.to_dict() == ref.to_dict()


class TestResumeService:
    def test_iterations_run_every_period(self, proactive_result):
        times = [r.time for r in proactive_result.resume_iterations]
        assert times, "resume operation must run"
        diffs = {b - a for a, b in zip(times, times[1:])}
        assert diffs == {proactive_result.config.resume_operation_period_s}

    def test_prewarm_batches_bounded_by_fleet(self, proactive_result):
        batches = proactive_result.prewarm_batch_sizes()
        assert batches
        assert max(batches) <= proactive_result.kpis().n_databases

    def test_workflow_buckets_sum_to_totals(self, proactive_result):
        kpis = proactive_result.kpis()
        buckets = proactive_result.workflow_counts_per_interval(
            "physical_pause", 15 * MIN
        )
        assert sum(buckets) == kpis.workflows.physical_pauses


class TestBucketing:
    def test_bucket_event_times(self):
        counts = bucket_event_times([0, 5, 10, 15, 29], start=0, end=30, bucket_s=10)
        assert counts == [2, 2, 1]

    def test_bucket_ignores_out_of_range(self):
        counts = bucket_event_times([-5, 35], start=0, end=30, bucket_s=10)
        assert counts == [0, 0, 0]

    def test_bad_bucket_rejected(self):
        with pytest.raises(ValueError):
            bucket_event_times([], 0, 10, 0)


class TestValidation:
    def test_empty_fleet_rejected(self):
        with pytest.raises(SimulationError):
            simulate_region([], "reactive")

    def test_bad_window_rejected(self):
        with pytest.raises(SimulationError):
            SimulationSettings(eval_start=10, eval_end=10)

    def test_default_settings_cover_trace_tail(self, fleet):
        result = simulate_region(fleet[:5], "reactive")
        kpis = result.kpis()
        assert kpis.eval_end - kpis.eval_start == 4 * DAY


class TestProvisionedBaseline:
    """Fixed-size provisioning: the pre-serverless baseline of Section 1."""

    def test_perfect_qos_maximal_idle(self, fleet, settings):
        kpis = simulate_region(fleet, "provisioned", settings=settings).kpis()
        assert kpis.qos_percent == 100.0
        assert kpis.unavailable_s == 0
        assert kpis.saved_s == 0  # resources are never reclaimed
        assert kpis.accounted_seconds() == kpis.fleet_seconds
        # Allocation is constant: used + idle covers the whole window.
        assert kpis.used_s + kpis.idle.total_s == kpis.fleet_seconds

    def test_idle_dominates_serverless_policies(self, fleet, settings, reactive_result):
        provisioned = simulate_region(fleet, "provisioned", settings=settings).kpis()
        assert provisioned.idle_percent > reactive_result.kpis().idle_percent

    def test_same_login_totals(self, fleet, settings, reactive_result):
        provisioned = simulate_region(fleet, "provisioned", settings=settings).kpis()
        assert provisioned.logins.total == reactive_result.kpis().logins.total


class TestMaintenanceSetting:
    def test_negative_maintenance_rejected(self):
        with pytest.raises(SimulationError):
            SimulationSettings(
                eval_start=0, eval_end=DAY, maintenance_per_week=-1.0
            )
