"""Micro-benchmarks for Algorithm 4: reference vs vectorised predictor.

The reference implementation issues p/s * h B-tree range queries per
prediction (the paper's stored procedure); the vectorised implementation
answers the same grid with two searchsorted passes.  The ablation quantifies
the speed-up that makes fleet-scale simulation practical.

The observability benches bound the cost of the live tracing layer on this
hot path: disabled instrumentation (the default) must stay under 2% of a
prediction, and the enabled metrics-only path is recorded alongside the
registry's own latency percentiles in
``benchmarks/results/BENCH_observability.json``.
"""

import json
import time

import pytest

from repro.config import ProRPConfig
from repro.core.fast_predictor import FastPredictor
from repro.core.predictor import predict_next_activity
from repro.observability import NULL_TRACER, OBS, observed
from repro.storage.history import HistoryStore
from repro.types import EventType, SECONDS_PER_DAY, SECONDS_PER_HOUR

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR


def _daily_history(days: int = 28, logins_per_day: int = 6):
    store = HistoryStore()
    logins = []
    for day in range(days):
        for k in range(logins_per_day):
            t = day * DAY + 9 * HOUR + k * 45 * 60
            store.insert_history(t, EventType.ACTIVITY_START)
            logins.append(t)
    return store, logins


def bench_reference_predictor(benchmark):
    """The stored-procedure implementation (Figure 10(c)'s subject)."""
    config = ProRPConfig()
    store, _ = _daily_history()
    now = 28 * DAY
    result = benchmark(predict_next_activity, store, config, now)
    assert not result.is_empty


def bench_fast_predictor(benchmark):
    """The NumPy implementation used for fleet simulation."""
    config = ProRPConfig()
    _, logins = _daily_history()
    predictor = FastPredictor(config)
    now = 28 * DAY
    result = benchmark(predictor.predict, logins, now)
    assert not result.is_empty


def bench_fast_predictor_large_history(benchmark):
    """Worst-case history (Figure 10(a)'s >4K tuple tail)."""
    config = ProRPConfig()
    _, logins = _daily_history(logins_per_day=80)
    predictor = FastPredictor(config)
    result = benchmark(predictor.predict, logins, 28 * DAY)
    assert not result.is_empty


def bench_reference_predictor_observed(benchmark):
    """The reference predictor with metrics collection enabled: the cost a
    live deployment pays for the Figure 10(c) percentiles."""
    config = ProRPConfig()
    store, _ = _daily_history()
    now = 28 * DAY
    with observed(tracer=NULL_TRACER):
        result = benchmark(predict_next_activity, store, config, now)
    assert not result.is_empty


def _timed_loop(fn, reps):
    start = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - start) / reps


def _guard_cost_s(reps: int = 1_000_000) -> float:
    """Per-evaluation cost of the disabled-path guard (``if OBS.enabled``).

    Measured as the delta between a loop over the guard and the same empty
    loop, so the loop machinery (which the real call sites do not add) is
    excluded.  The guard itself is what the instrumented hot paths pay when
    observability is off: a global load, an attribute load, and a branch.
    """
    assert not OBS.enabled
    hits = 0
    start = time.perf_counter()
    for _ in range(reps):
        if OBS.enabled:
            hits += 1  # pragma: no cover - observability is off
    guarded = time.perf_counter() - start
    assert hits == 0
    start = time.perf_counter()
    for _ in range(reps):
        pass
    empty = time.perf_counter() - start
    return max(0.0, guarded - empty) / reps


def bench_observability_noop_overhead(results_dir):
    """Disabled observability must cost <2% of a reference prediction.

    The guard sites on the path are counted by running one prediction with
    metrics enabled (every counter on this path increments by one per guard
    evaluation), the per-guard cost is measured with a tight loop, and the
    product is compared against the measured prediction time.  Real
    enabled/disabled timings and the registry percentiles land in
    ``BENCH_observability.json`` as the committed baseline.
    """
    config = ProRPConfig()
    store, _ = _daily_history()
    now = 28 * DAY
    reps = 50

    assert not OBS.enabled  # the repo-wide default
    disabled_s = _timed_loop(lambda: predict_next_activity(store, config, now), reps)

    with observed(tracer=NULL_TRACER):
        enabled_s = _timed_loop(
            lambda: predict_next_activity(store, config, now), reps
        )
        registry = OBS.metrics
        # Guard evaluations per prediction: each of these counters sits
        # behind exactly one `if OBS.enabled` check that fired once per
        # unit increment.
        guard_evals = (
            registry.counter("predictor.reference.calls").value
            + registry.counter("history.range_queries").value
            + registry.counter("btree.range_scans").value
        ) / reps
        latency = registry.histogram("predictor.reference.latency_ms").snapshot()

    guard_s = _guard_cost_s()
    overhead_fraction = guard_evals * guard_s / disabled_s
    baseline = {
        "reps": reps,
        "disabled_us_per_prediction": round(disabled_s * 1e6, 3),
        "enabled_metrics_us_per_prediction": round(enabled_s * 1e6, 3),
        "guard_evals_per_prediction": round(guard_evals, 1),
        "guard_cost_ns": round(guard_s * 1e9, 3),
        "noop_overhead_fraction": round(overhead_fraction, 6),
        "predictor_reference_latency_ms": latency,
    }
    path = results_dir / "BENCH_observability.json"
    path.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(baseline, indent=2))
    assert overhead_fraction < 0.02, (
        f"disabled observability costs {overhead_fraction:.2%} of a "
        f"reference prediction (limit 2%)"
    )
