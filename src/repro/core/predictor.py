"""Prediction of next activity: the probabilistic Algorithm 4.

The algorithm slides a window of length ``w`` every ``s`` seconds across the
prediction horizon ``[now, now + p]``.  For each candidate window it looks at
the same window of the day (or week, for weekly seasonality) on each of the
previous ``h`` periods, counts how many of those past windows contained at
least one login, and divides by the number of periods to get the activity
probability.  The earliest window whose probability reaches the confidence
threshold ``c`` seeds the prediction; consecutive qualifying windows with
strictly higher probability refine it; the scan stops as soon as a
prediction exists and the current window no longer improves it (see
DESIGN.md for the tie-breaking interpretation of the paper's lines 37-46).

The predicted start/end are the earliest first-login offset and the latest
last-login offset observed across the historical windows, projected onto
the candidate window -- exactly lines 25-33 of the stored procedure.
"""

from __future__ import annotations

import time as _time
from typing import Optional, Protocol, Tuple

from repro.config import ProRPConfig
from repro.core.prediction_cache import HOT_PATH
from repro.faults.runtime import FAULTS
from repro.observability.metrics import LATENCY_BUCKETS_MS
from repro.observability.runtime import OBS
from repro.types import PredictedActivity

#: Fault point consulted per instrumented prediction: a latency spike that
#: inflates the recorded wall-clock latency by the spec's ``latency_s``
#: (the paper's Figure 10(c) tail, made reproducible on demand).
LATENCY_FAULT_POINT = "predictor.latency"


class HistoryView(Protocol):
    """What Algorithm 4 needs from the history store: the MIN/MAX login
    range query of lines 19-24.  Both the direct B-tree store and the SQL
    procedures satisfy this protocol."""

    def first_last_login(
        self, window_start: int, window_end: int
    ) -> Tuple[Optional[int], Optional[int]]:
        """(first, last) login timestamp within [window_start, window_end],
        or (None, None) when the window contains no logins."""


def predict_next_activity(
    history: HistoryView,
    config: ProRPConfig,
    now: int,
) -> PredictedActivity:
    """Run Algorithm 4 and return the next predicted activity.

    Returns the no-prediction sentinel (``start == end == 0``) when no
    window across the horizon reaches the confidence threshold -- this is
    the ``nextActivity.start = 0`` case of Algorithm 1.
    """
    if not OBS.enabled:
        return _predict_next_activity(history, config, now)
    started = _time.perf_counter()
    with OBS.tracer.span("predictor.reference", t=now) as span:
        prediction = _predict_next_activity(history, config, now)
    elapsed_ms = (_time.perf_counter() - started) * 1000.0
    if FAULTS.enabled:
        elapsed_ms += FAULTS.injector.latency_s(LATENCY_FAULT_POINT, now) * 1000.0
    OBS.metrics.histogram(
        "predictor.reference.latency_ms", buckets=LATENCY_BUCKETS_MS
    ).observe(elapsed_ms)
    # Windowed view on the simulated clock so the predictor-p99 SLO can
    # burn against it; the exemplar is the span id of the window's worst
    # call (falls back to the sim timestamp under the null tracer).
    span_id = getattr(span, "span_id", None)
    OBS.metrics.histogram_series(
        "predictor.latency_ms.window", buckets=LATENCY_BUCKETS_MS
    ).observe(
        now,
        elapsed_ms,
        exemplar=f"span:{span_id}" if span_id is not None else f"t:{now}",
    )
    OBS.metrics.counter("predictor.reference.calls").inc()
    return prediction


def _predict_next_activity(
    history: HistoryView,
    config: ProRPConfig,
    now: int,
) -> PredictedActivity:
    """The uninstrumented Algorithm 4 scan (see the public wrapper)."""
    HOT_PATH.full_scans += 1
    period = config.seasonality.period_seconds
    periods = config.seasonality_periods_in_history
    window_start = now
    horizon_end = now + config.horizon_s
    best: Optional[PredictedActivity] = None
    previous_probability = 0.0
    while window_start + config.window_s <= horizon_end:
        windows_with_activity = 0
        first_login_per_window = config.window_s
        last_login_per_window = 0
        for previous in range(1, periods + 1):
            past_start = window_start - previous * period
            past_end = past_start + config.window_s
            first, last = history.first_last_login(past_start, past_end)
            if first is None:
                continue
            first_offset = first - past_start
            last_offset = last - past_start
            if first_offset < first_login_per_window:
                first_login_per_window = first_offset
            if last_offset > last_login_per_window:
                last_login_per_window = last_offset
            windows_with_activity += 1
        probability = windows_with_activity / periods
        if probability >= config.confidence and (
            best is None or probability > previous_probability
        ):
            best = PredictedActivity(
                start=window_start + first_login_per_window,
                end=window_start + last_login_per_window,
                confidence=probability,
            )
            previous_probability = probability
        elif best is not None:
            break
        window_start += config.slide_s
    return best if best is not None else PredictedActivity.none()
