"""Durability of the database history (Sections 3.3 and 5).

Two requirements from the paper:

* "if a database moves from one compute node to another to balance the
  load, its history must move with it" -- trivially satisfied because the
  history lives inside the tenant database, but the move itself needs a
  serialization format;
* "we leverage the established backup and restore mechanisms of Azure SQL
  Database to tackle data loss" -- snapshots with checksums stand in for
  those mechanisms.

Snapshots are plain JSON so they survive process restarts and can be
inspected.  Two CRC-style checksums detect corruption: the event checksum
travels with the in-memory snapshot and is verified on every restore; the
file checksum covers the *entire* persisted document (version, database
id, and events), so any single-byte corruption of a snapshot file --
including fields the event checksum does not cover -- fails the read.

Fault points (consulted only while ``repro.faults`` is armed):

* ``storage.snapshot.corrupt`` -- the save path corrupts the persisted
  payload (a bit flip on the backup medium); the checksum must catch it
  on read.
* ``storage.snapshot.restore`` -- the restore path is unavailable (the
  backup store is down) and raises :class:`StorageError`.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple

from repro.errors import StorageError
from repro.faults.runtime import FAULTS
from repro.storage.atomic import atomic_write_text
from repro.storage.history import HistoryStore
from repro.types import EventType, HistoryEvent

#: Snapshot format version, bumped on layout changes (2: file checksum
#: covering the whole document).
SNAPSHOT_VERSION = 2

#: Fault point: the save path corrupts the persisted document.
CORRUPT_FAULT_POINT = "storage.snapshot.corrupt"

#: Fault point: the restore path (backup store) is unavailable.
RESTORE_FAULT_POINT = "storage.snapshot.restore"


@dataclass(frozen=True)
class HistorySnapshot:
    """A point-in-time copy of one database's history."""

    database_id: str
    events: Tuple[HistoryEvent, ...]
    checksum: int
    version: int = SNAPSHOT_VERSION

    @property
    def tuple_count(self) -> int:
        return len(self.events)


def _checksum(events: List[Tuple[int, int]]) -> int:
    payload = json.dumps(events, separators=(",", ":")).encode("ascii")
    return zlib.crc32(payload)


def snapshot_history(store: HistoryStore, database_id: str) -> HistorySnapshot:
    """Take a consistent snapshot (backup) of the history store."""
    events = store.all_events()
    raw = [(e.time_snapshot, int(e.event_type)) for e in events]
    return HistorySnapshot(
        database_id=database_id,
        events=tuple(events),
        checksum=_checksum(raw),
    )


def restore_history(snapshot: HistorySnapshot) -> HistoryStore:
    """Rebuild a history store from a snapshot, verifying the checksum.

    Restores are how history follows a database across node moves and how
    data loss is repaired from backups.
    """
    if FAULTS.enabled and FAULTS.injector.should_fire(RESTORE_FAULT_POINT):
        raise StorageError(
            f"injected: backup store unavailable restoring "
            f"{snapshot.database_id!r}"
        )
    raw = [(e.time_snapshot, int(e.event_type)) for e in snapshot.events]
    if _checksum(raw) != snapshot.checksum:
        raise StorageError(
            f"snapshot of {snapshot.database_id!r} fails its checksum: "
            "refusing to restore corrupt history"
        )
    store = HistoryStore()
    loaded = store.bulk_load(snapshot.events)
    if loaded != len(snapshot.events):
        raise StorageError(
            f"snapshot of {snapshot.database_id!r} contains duplicate "
            "timestamps: the source table violated its unique constraint"
        )
    return store


# ---------------------------------------------------------------------------
# File round trip (the "established backup mechanisms")
# ---------------------------------------------------------------------------


def _document_payload(document: dict) -> bytes:
    """The canonical serialization the file checksum covers: everything
    except the ``file_checksum`` field itself, in sorted-key order."""
    body = {k: v for k, v in document.items() if k != "file_checksum"}
    return json.dumps(body, separators=(",", ":"), sort_keys=True).encode("utf-8")


def write_snapshot(snapshot: HistorySnapshot, path: Path) -> None:
    """Persist a snapshot as JSON with a whole-document checksum.

    The write is crash-safe: the document lands in a same-directory temp
    file that is fsynced and atomically renamed over ``path``
    (:func:`repro.storage.atomic.atomic_write_text`), so a crash mid-write
    can never leave a half-written snapshot where a good one used to be.
    """
    document = {
        "version": snapshot.version,
        "database_id": snapshot.database_id,
        "checksum": snapshot.checksum,
        "events": [
            [e.time_snapshot, int(e.event_type)] for e in snapshot.events
        ],
    }
    document["file_checksum"] = zlib.crc32(_document_payload(document))
    if FAULTS.enabled and FAULTS.injector.should_fire(CORRUPT_FAULT_POINT):
        # Bit rot on the backup medium: corrupt the payload *after* the
        # checksum was computed so the read path must catch it.
        if document["events"]:
            document["events"][-1][0] += 1
        else:
            document["checksum"] += 1
    atomic_write_text(path, json.dumps(document))


def read_snapshot(path: Path) -> HistorySnapshot:
    """Load a snapshot written by :func:`write_snapshot`.

    Any corruption of the persisted file -- unparsable JSON, a missing
    field, or a payload that fails the whole-document checksum -- raises
    :class:`StorageError` rather than yielding a silently wrong snapshot.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise StorageError(f"snapshot file {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise StorageError(f"snapshot file {path} does not hold an object")
    if document.get("version") != SNAPSHOT_VERSION:
        raise StorageError(
            f"unsupported snapshot version {document.get('version')!r}"
        )
    try:
        stored_file_checksum = document["file_checksum"]
        if zlib.crc32(_document_payload(document)) != stored_file_checksum:
            raise StorageError(
                f"snapshot file {path} fails its file checksum: "
                "refusing to load a corrupt backup"
            )
        events = tuple(
            HistoryEvent(t, EventType(e)) for t, e in document["events"]
        )
        return HistorySnapshot(
            database_id=document["database_id"],
            events=events,
            checksum=document["checksum"],
        )
    except StorageError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(f"snapshot file {path} is malformed: {exc}") from exc


def move_history(
    store: HistoryStore, database_id: str
) -> Tuple[HistorySnapshot, HistoryStore]:
    """Simulate a load-balancing move: snapshot on the source node, restore
    on the target node; returns (snapshot, store-on-new-node)."""
    snapshot = snapshot_history(store, database_id)
    return snapshot, restore_history(snapshot)
